(** The static-service pipeline (Figure 2).

    Code flows through a stack of independent code-transformation
    filters; parsing and generation happen once for all services. A
    rejection anywhere becomes an error-propagation replacement class,
    so failures reach clients as ordinary Java exceptions. *)

type outcome = {
  out_bytes : string;
  rejected : (string * string) option;  (** (filter, reason) *)
  parse_cost : int64;  (** µs of proxy CPU *)
  transform_cost : int64;
  generate_cost : int64;
  parses : int;
}

val total_cost : outcome -> int64

val digest : outcome -> string
(** MD5 of [out_bytes] — the pipeline is pure, so the same input class
    digests identically no matter which proxy shard ran it. *)

val parse_us_per_byte : float
val generate_us_per_byte : float
val transform_us_per_instr : float

val parse_cost_of : string -> int64
val generate_cost_of : string -> int64
val transform_cost_of : Bytecode.Classfile.t -> int64

val run : ?signer:Dsig.Sign.key -> Rewrite.Filter.t list -> string -> outcome

val run_parse_per_service :
  ?signer:Dsig.Sign.key -> Rewrite.Filter.t list -> string -> outcome
(** Ablation: re-parse and re-generate between every pair of services
    (same output, multiplied cost). *)
