(* Library facade. The single-node proxy implementation lives in
   [Node]; [Farm] composes several nodes behind a consistent-hash
   ring. Re-exported here so users write [Proxy.request],
   [Proxy.Farm.create], [Proxy.Cache.stats] and so on. *)

module Cache = Cache
module Pipeline = Pipeline
module Httpwire = Httpwire
module Breaker = Breaker
module Admission = Admission

include Node

module Farm = Farm
module Control = Control
