(** The transparent network proxy hosting the static service
    components (§2–§3).

    Intercepts class requests from clients, fetches from the origin,
    runs the filter pipeline once per class, signs the result, caches
    it, and leaves an audit trail. The proxy CPU serializes pipeline
    work and its memory holds per-request working state — the resource
    model behind Figure 10.

    The single-node implementation lives in [Node] and is re-exported
    here; {!Farm} shards class keys across several nodes by consistent
    hashing, and {!Replica} runs identical nodes behind a primary /
    failover facade. *)

module Cache : module type of Cache
module Pipeline : module type of Pipeline
module Httpwire : module type of Httpwire

module Breaker : module type of Breaker
(** Per-shard circuit breaker (closed/open/half-open with hysteresis)
    consulted by {!Farm} before routing. *)

module Admission : module type of Admission
(** Deadline-aware admission control: each node sheds requests whose
    remaining budget cannot cover estimated service cost. *)

type reply = Node.reply =
  | Bytes of string
  | Not_found
  | Unavailable
  | Overloaded
      (** Shed by admission control: the shard could not finish the
          request inside its deadline (or its queue is full). Distinct
          from [Unavailable] so clients retry-with-budget instead of
          failing over. *)

type origin = string -> string option

type waiter = Node.waiter
(** A request that joined an in-flight single-flight run: its
    completion callback and failure hook, fired when the leader's
    pipeline run settles. *)

type t = Node.t = {
  engine : Simnet.Engine.t;
  host : Simnet.Host.t;
  cache : Cache.t;  (** the shard's own L1 *)
  l2 : Cache.t option;  (** optional shared tier, one instance per farm *)
  l2_lookup_us : int;
  l2_bandwidth_bps : int;  (** peer-to-peer transfer rate for L2 hits *)
  mutable filters : Rewrite.Filter.t list;
  mutable policy_version : int;
      (** security-policy version this shard rewrites under; stamped
          onto pipeline runs and every L1/L2 entry (0 = unversioned).
          The control plane's apply hook swaps [filters] and bumps
          this together. *)
  mutable serving_allowed : unit -> bool;
      (** control-plane fence: when it returns [false] the node
          refuses to serve (counter and same-named trace event
          [control.fenced_rejects]) and requests take the [on_fail]
          path like a crashed host, so the farm fails over. Wire to
          {!Control.member_ok}; defaults to always-true. *)
  origin : origin;
  origin_latency : string -> Simnet.Engine.time;
  origin_bandwidth_bps : int;
  signer : Dsig.Sign.key option;
  memo : Pipeline.Memo.t option;  (** optional host-CPU outcome memo *)
  audit : Monitor.Audit.t option;
  working_set_factor : int;
  inflight : (string, waiter list ref) Hashtbl.t;
      (** keys with a pipeline run in flight → requests that joined it *)
  admission : Admission.t;
  mutable requests : int;
  mutable rejections : int;
  mutable bytes_served : int;
  mutable origin_fetches : int;
  mutable pipeline_runs : int;  (** full parse/rewrite/generate passes *)
  mutable coalesced : int;  (** requests that joined an in-flight run *)
  mutable l2_hits : int;  (** misses served by the shared tier *)
  mutable fenced_rejects : int;
      (** requests refused by the control-plane fence *)
  mutable cpu_us : int64;  (** total pipeline + cache-service CPU *)
}

val create :
  ?cache_capacity:int ->
  ?mem_capacity:int ->
  ?signer:Dsig.Sign.key ->
  ?audit:Monitor.Audit.t ->
  ?origin_bandwidth_bps:int ->
  ?working_set_factor:int ->
  ?cpu_factor:float ->
  ?host_name:string ->
  ?l2:Cache.t ->
  ?memo:Pipeline.Memo.t ->
  ?l2_lookup_us:int ->
  ?l2_bandwidth_bps:int ->
  ?admission:Admission.t ->
  Simnet.Engine.t ->
  origin:origin ->
  origin_latency:(string -> Simnet.Engine.time) ->
  filters:Rewrite.Filter.t list ->
  unit ->
  t
(** Defaults: 48 MB cache, 64 MB memory (the paper's proxy), 100 Mb/s
    uplink. [cache_capacity:0] disables caching. Passing the same
    [l2] cache instance to every shard of a farm gives them a shared
    second tier: a miss found there costs [l2_lookup_us] (default
    1500) plus the transfer at [l2_bandwidth_bps] (default 100 Mb/s)
    instead of a pipeline run, and a cache-cold restarted shard
    rewarms from its peers' work. [memo] (also shareable pool-wide)
    memoizes pipeline outcomes on the host CPU — see
    {!Pipeline.Memo}; simulated costs and served bytes are unchanged,
    the wall-clock work of re-running identical inputs is skipped. *)

val request :
  ?on_fail:(unit -> unit) -> ?deadline:int64 -> ?trace:Telemetry.Trace.ctx ->
  t -> cls:string -> (reply -> unit) -> unit
(** Simulated-time request; the callback fires when the response is
    ready for the client's wire. [on_fail] fires instead if the proxy
    host is down at dispatch or crashes while the request is in
    flight (without it, a failed request simply never completes — the
    caller's timeout problem).

    [trace] nests this hop under the caller's distributed trace: a
    per-shard span, reason events for sheds / coalesce joins / L2
    hits, and the pipeline's telemetry spans as leaves.

    [deadline] (absolute virtual µs) engages admission control: if the
    CPU backlog plus the estimated hit/miss service cost cannot land
    inside it, the request is shed with [Overloaded] after one
    zero-delay hop, before any work is scheduled. Without a deadline,
    admission is passive bookkeeping.

    Misses are single-flight: the first request for a key leads and
    runs the pipeline; concurrent requests for the same key join it
    (counter [coalesced]) and settle — success or failure — with the
    leader. A crash mid-flight fails every joined request at once,
    each through its own [on_fail]. *)

val request_sync : t -> cls:string -> reply
(** Synchronous variant for unit tests and the CLI. *)

val provider : t -> Jvm.Classreg.provider
(** A classloading provider backed by the synchronous path — what a
    DVM client plugs into its registry. *)

type proxy = t

(** Replicated proxies behind one facade (§5's availability answer to
    the single-point-of-failure critique). Requests prefer the
    primary (replica 0) and fail over in order to the first live
    secondary when the preferred replica is down at dispatch or
    crashes mid-request; health is probed at every dispatch, so a
    restarted primary takes traffic back immediately — cache-cold.
    Counters: [proxy.failovers], [proxy.unavailable]. *)
module Replica : sig
  type t = {
    engine : Simnet.Engine.t;
    pool : proxy array;
    health : bool array;  (** last observed per-replica state *)
    mutable requests : int;
    mutable failovers : int;  (** requests served by a non-primary *)
    mutable unavailable : int;  (** requests no replica could serve *)
  }

  val create : Simnet.Engine.t -> proxy array -> t
  (** The pool must be non-empty; replica 0 is the primary. *)

  val size : t -> int
  val replica : t -> int -> proxy

  val health : t -> bool array
  (** Probe every replica host and return the refreshed view. *)

  val request : t -> cls:string -> (reply -> unit) -> unit
  (** Dispatch with failover; replies [Unavailable] (after one
      simulated-time hop) when every replica is down. *)
end

module Farm : module type of Farm
(** Sharded proxy farm: consistent-hash routing over independent
    shards, ring-order failover, farm-wide counter aggregation. *)

module Control : module type of Control
(** The farm's control plane: a leader-based replication log with
    lease fencing that propagates security-policy versions and
    rewrite-cache invalidations to every shard over simnet links. *)
