(** The transparent network proxy hosting the static service
    components (§2–§3).

    Intercepts class requests from clients, fetches from the origin,
    runs the filter pipeline once per class, signs the result, caches
    it, and leaves an audit trail. The proxy CPU serializes pipeline
    work and its memory holds per-request working state — the resource
    model behind Figure 10. *)

module Cache : module type of Cache
module Pipeline : module type of Pipeline
module Httpwire : module type of Httpwire

type reply = Bytes of string | Not_found | Unavailable

type origin = string -> string option

type t = {
  engine : Simnet.Engine.t;
  host : Simnet.Host.t;
  cache : Cache.t;
  mutable filters : Rewrite.Filter.t list;
  origin : origin;
  origin_latency : string -> Simnet.Engine.time;
  origin_bandwidth_bps : int;
  signer : Dsig.Sign.key option;
  audit : Monitor.Audit.t option;
  working_set_factor : int;
  mutable requests : int;
  mutable rejections : int;
  mutable bytes_served : int;
  mutable origin_fetches : int;
  mutable cpu_us : int64;  (** total pipeline + cache-service CPU *)
}

val create :
  ?cache_capacity:int ->
  ?mem_capacity:int ->
  ?signer:Dsig.Sign.key ->
  ?audit:Monitor.Audit.t ->
  ?origin_bandwidth_bps:int ->
  ?working_set_factor:int ->
  ?cpu_factor:float ->
  Simnet.Engine.t ->
  origin:origin ->
  origin_latency:(string -> Simnet.Engine.time) ->
  filters:Rewrite.Filter.t list ->
  unit ->
  t
(** Defaults: 48 MB cache, 64 MB memory (the paper's proxy), 100 Mb/s
    uplink. [cache_capacity:0] disables caching. *)

val request : ?on_fail:(unit -> unit) -> t -> cls:string -> (reply -> unit) -> unit
(** Simulated-time request; the callback fires when the response is
    ready for the client's wire. [on_fail] fires instead if the proxy
    host is down at dispatch or crashes while the request is in
    flight (without it, a failed request simply never completes — the
    caller's timeout problem). *)

val request_sync : t -> cls:string -> reply
(** Synchronous variant for unit tests and the CLI. *)

val provider : t -> Jvm.Classreg.provider
(** A classloading provider backed by the synchronous path — what a
    DVM client plugs into its registry. *)

type proxy = t

(** Replicated proxies behind one facade (§5's availability answer to
    the single-point-of-failure critique). Requests prefer the
    primary (replica 0) and fail over in order to the first live
    secondary when the preferred replica is down at dispatch or
    crashes mid-request; health is probed at every dispatch, so a
    restarted primary takes traffic back immediately — cache-cold.
    Counters: [proxy.failovers], [proxy.unavailable]. *)
module Replica : sig
  type t = {
    engine : Simnet.Engine.t;
    pool : proxy array;
    health : bool array;  (** last observed per-replica state *)
    mutable requests : int;
    mutable failovers : int;  (** requests served by a non-primary *)
    mutable unavailable : int;  (** requests no replica could serve *)
  }

  val create : Simnet.Engine.t -> proxy array -> t
  (** The pool must be non-empty; replica 0 is the primary. *)

  val size : t -> int
  val replica : t -> int -> proxy

  val health : t -> bool array
  (** Probe every replica host and return the refreshed view. *)

  val request : t -> cls:string -> (reply -> unit) -> unit
  (** Dispatch with failover; replies [Unavailable] (after one
      simulated-time hop) when every replica is down. *)
end
