(* Instruction-stream patching: the core mechanic of every static
   service component. Services insert instruction blocks before
   existing instructions; branch targets, exception tables and stack
   bounds are fixed up so the result is again a well-formed method.

   Inserted blocks may contain internal branches; their targets are
   interpreted *relative to the block* (0 = first inserted
   instruction). Falling off the end of a block continues into the
   instruction the block was inserted before, so straight-line
   instrumentation needs no explicit jump.

   Each insertion chooses how existing branches interact with it:

   - [redirect = true] (the common case): old branch targets pointing
     at the insertion point are redirected to the block, so the
     instrumentation runs no matter how control reaches the guarded
     instruction.
   - [redirect = false]: branches keep pointing at the original
     instruction; the block runs only when control *falls through*
     into the insertion point. This is how a loop-invariant check is
     hoisted to a loop header — the back edge must skip it.

   At a shared insertion point, fall-through-only blocks are laid out
   first, then redirected blocks, then the original instruction, so
   both semantics hold simultaneously. *)

module I = Bytecode.Instr
module CF = Bytecode.Classfile

type insertion = {
  at : int; (* insert before the instruction currently at this index *)
  block : I.t list; (* targets are block-relative *)
  redirect : bool;
}

let before ?(redirect = true) at block = { at; block; redirect }

(* The layout of a patched method: where every original instruction
   landed, where branches into an old index now go, and where each
   inserted block begins. Certificate emission needs exactly this —
   the rewriter's elision facts are computed over the original code
   but certificates must name positions in the rewritten code the
   validator sees. *)
type layout = {
  l_instr : int array;
      (* old instruction index -> its new index (length n+1; slot n is
         the append point) *)
  l_target : int array;
      (* old branch target -> new target (skips fall-through-only
         blocks, runs redirected ones) *)
  l_starts : int array;
      (* per input insertion, in list order: new index of the block's
         first instruction *)
}

(* [n] (the code length) is a valid insertion point meaning "append at
   the very end" — used when instrumenting past the last instruction
   is needed (rare; returns are usually the anchor). *)
let apply_insertions_layout (code : CF.code) (insertions : insertion list) :
    CF.code * layout =
  let n = Array.length code.CF.instrs in
  List.iter
    (fun { at; _ } ->
      if at < 0 || at > n then invalid_arg "Patch.apply_insertions: bad index")
    insertions;
  (* Group blocks by insertion point, preserving order of same-point
     insertions within each redirect class. Each block keeps its input
     position so the layout can report where it landed. *)
  let fall_only = Array.make (n + 1) [] in
  let redirected = Array.make (n + 1) [] in
  List.iteri
    (fun pos ins ->
      let arr = if ins.redirect then redirected else fall_only in
      arr.(ins.at) <- arr.(ins.at) @ [ (pos, ins.block) ])
    insertions;
  let len_of blocks =
    List.fold_left (fun acc (_, b) -> acc + List.length b) 0 blocks
  in
  let fall_len_at i = len_of fall_only.(i) in
  let block_len_at i = fall_len_at i + len_of redirected.(i) in
  (* start.(i): new index of the first inserted instruction at old
     index i (fall-through-only blocks first); the old instruction i
     itself lands at start.(i) + block_len_at i. *)
  let start = Array.make (n + 1) 0 in
  for i = 1 to n do
    start.(i) <- start.(i - 1) + block_len_at (i - 1) + 1
  done;
  (* Old branch target t skips any fall-through-only blocks but runs
     the redirected ones. *)
  let retarget t = start.(t) + fall_len_at t in
  (* The new length is known up front (start already accounts for every
     block), so the result is written straight into an exact-size array
     instead of accumulating a list and reversing. *)
  let total = start.(n) + block_len_at n in
  let instrs = Array.make (max total 1) I.Nop in
  let starts = Array.make (List.length insertions) 0 in
  let next = ref 0 in
  let emit i =
    instrs.(!next) <- i;
    incr next
  in
  let emit_blocks i =
    let base = ref start.(i) in
    List.iter
      (fun (pos, block) ->
        let b = !base in
        starts.(pos) <- b;
        List.iter (fun ins -> emit (I.map_targets (fun j -> b + j) ins)) block;
        base := b + List.length block)
      (fall_only.(i) @ redirected.(i))
  in
  for i = 0 to n - 1 do
    emit_blocks i;
    emit (I.map_targets retarget code.CF.instrs.(i))
  done;
  (* Trailing block at index n, if any. *)
  emit_blocks n;
  let instrs = if total = 0 then [||] else instrs in
  let handlers =
    List.map
      (fun h ->
        {
          CF.h_start = start.(h.CF.h_start);
          h_end = start.(h.CF.h_end);
          h_target = retarget h.CF.h_target;
          h_catch = h.CF.h_catch;
        })
      code.CF.handlers
  in
  let l_instr = Array.init (n + 1) (fun i -> start.(i) + block_len_at i) in
  let l_target = Array.init (n + 1) retarget in
  ({ code with CF.instrs; handlers }, { l_instr; l_target; l_starts = starts })

let apply_insertions code insertions =
  fst (apply_insertions_layout code insertions)

(* Recompute stack/locals bounds after patching. The estimate walks the
   new CFG; we keep at least the original bounds, so instrumentation
   can only widen. *)
let refit_bounds pool ~params ~is_static (code : CF.code) : CF.code =
  let handler_targets = List.map (fun h -> h.CF.h_target) code.CF.handlers in
  let max_stack =
    max code.CF.max_stack
      (Bytecode.Builder.estimate_max_stack ~handler_targets pool code.CF.instrs)
  in
  let max_locals =
    max code.CF.max_locals
      (Bytecode.Builder.estimate_max_locals ~params ~is_static code.CF.instrs)
  in
  { code with CF.max_stack; max_locals }

(* Dataflow-exact bounds over *reachable* code. Unlike [refit_bounds],
   dead instructions — e.g. left stranded after an unconditional
   branch by an eliding pass — contribute nothing, and the original
   bounds are not a floor: a method whose deepest-stack path was
   removed gets smaller bounds back. Falls back to [refit_bounds]
   when the code is outside the CFG builder's model — including
   [Solver.Diverged]: the depth lattice has no widening, so a
   net-stack-increasing loop (unverifiable, but decodable) never
   reaches a fixpoint. *)
let recompute pool ~params ~is_static (code : CF.code) : CF.code =
  match
    let cfg = Analysis.Cfg.of_code code in
    let max_stack = Analysis.Stackeff.max_stack pool cfg in
    let max_locals = Analysis.Stackeff.max_locals ~params ~is_static cfg in
    { code with CF.max_stack; max_locals }
  with
  | code -> code
  | exception
      ( Analysis.Cfg.Malformed _ | Analysis.Solver.Diverged _
      | Bytecode.Cp.Invalid_index _ | Bytecode.Cp.Wrong_kind _
      | Bytecode.Descriptor.Bad_descriptor _ ) ->
    refit_bounds pool ~params ~is_static code

let is_return = function
  | I.Ireturn | I.Areturn | I.Return -> true
  | _ -> false

let return_sites (code : CF.code) =
  let sites = ref [] in
  Array.iteri
    (fun i ins -> if is_return ins then sites := i :: !sites)
    code.CF.instrs;
  List.rev !sites

(* Instrument a method body: [entry] runs before the first instruction,
   [before_return] runs before every return. Both blocks must preserve
   the operand stack. *)
let instrument_method pool (m : CF.meth) ~entry ~before_return : CF.meth =
  match m.CF.m_code with
  | None -> m
  | Some code ->
    let insertions =
      (if entry = [] then [] else [ before 0 entry ])
      @
      if before_return = [] then []
      else List.map (fun at -> before at before_return) (return_sites code)
    in
    if insertions = [] then m
    else
      let code = apply_insertions code insertions in
      let sg = Bytecode.Descriptor.method_sig_of_string m.CF.m_desc in
      let code =
        refit_bounds pool
          ~params:(Bytecode.Descriptor.param_slots sg)
          ~is_static:(CF.has_flag m.CF.m_flags CF.Static)
          code
      in
      { m with CF.m_code = Some code }
