(** Instruction-stream patching: the core mechanic of every static
    service component.

    Services insert instruction blocks before existing instructions;
    branch targets, exception tables and stack bounds are fixed up so
    the result is again a well-formed method. Branch targets {e inside}
    an inserted block are block-relative (0 = first inserted
    instruction); falling off the end of a block continues into the
    instruction it was inserted before.

    With [redirect = true] old branch targets are redirected to the
    inserted block, so instrumentation guarding an instruction runs no
    matter how control reaches it. With [redirect = false] branches
    keep their original target and the block runs only on fall-through
    — how a hoisted loop-invariant check is kept off the back edge. *)

type insertion = {
  at : int;  (** insert before the instruction currently at this index;
                 the code length itself is a valid point (append) *)
  block : Bytecode.Instr.t list;  (** targets are block-relative *)
  redirect : bool;
}

val before : ?redirect:bool -> int -> Bytecode.Instr.t list -> insertion
(** [before at block] — an insertion before [at]; [redirect] defaults
    to [true]. *)

val apply_insertions :
  Bytecode.Classfile.code -> insertion list -> Bytecode.Classfile.code
(** @raise Invalid_argument on an out-of-range insertion point. *)

(** Where everything landed after patching — what a service needs to
    translate facts computed over the original code into positions in
    the rewritten code (e.g. elision certificates). *)
type layout = {
  l_instr : int array;
      (** old instruction index → its new index (length [n+1]; slot [n]
          is the append point) *)
  l_target : int array;
      (** old branch target → new target (skips fall-through-only
          blocks, runs redirected ones) *)
  l_starts : int array;
      (** per input insertion, in list order: new index of the block's
          first instruction *)
}

val apply_insertions_layout :
  Bytecode.Classfile.code ->
  insertion list ->
  Bytecode.Classfile.code * layout
(** Like {!apply_insertions}, also reporting the layout. *)

val refit_bounds :
  Bytecode.Cp.t ->
  params:int ->
  is_static:bool ->
  Bytecode.Classfile.code ->
  Bytecode.Classfile.code
(** Recompute [max_stack]/[max_locals] after patching (never below the
    original bounds). *)

val recompute :
  Bytecode.Cp.t ->
  params:int ->
  is_static:bool ->
  Bytecode.Classfile.code ->
  Bytecode.Classfile.code
(** Dataflow-exact bounds over reachable code: unreachable
    instructions contribute nothing and the original bounds are not a
    floor. Falls back to {!refit_bounds} on code outside the CFG
    builder's model. *)

val return_sites : Bytecode.Classfile.code -> int list

val instrument_method :
  Bytecode.Cp.t ->
  Bytecode.Classfile.meth ->
  entry:Bytecode.Instr.t list ->
  before_return:Bytecode.Instr.t list ->
  Bytecode.Classfile.meth
(** Run [entry] before the first instruction and [before_return] before
    every return. Both blocks must preserve the operand stack. *)
