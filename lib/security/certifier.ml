(* Policy instantiation of the translation-validating certifier: tells
   {!Analysis.Certify} what a protected site and an enforcement-check
   invocation look like, which is all the policy-specific knowledge
   the validator needs. Everything global — CFG, dominators, the
   availability solver — is re-derived inside the analysis layer from
   the rewritten code alone. *)

module CF = Bytecode.Classfile
module CP = Bytecode.Cp
module I = Bytecode.Instr

(* Is the instruction an [Invokestatic] of the enforcement entry point
   [name]/[desc]? *)
let enforcement_invoke pool (code : CF.code) idx ~name ~desc =
  if idx < 0 || idx >= Array.length code.CF.instrs then false
  else
    match code.CF.instrs.(idx) with
    | I.Invokestatic k -> (
      match CP.get_methodref pool k with
      | mr ->
        String.equal mr.CP.ref_class Enforcement.class_name
        && String.equal mr.CP.ref_name name
        && String.equal mr.CP.ref_desc desc
      | exception (CP.Invalid_index _ | CP.Wrong_kind _) -> false)
    | _ -> false

let perm_literal pool (code : CF.code) idx =
  if idx < 0 || idx >= Array.length code.CF.instrs then None
  else
    match code.CF.instrs.(idx) with
    | I.Ldc_str k -> (
      match CP.get_string pool k with
      | s -> Some s
      | exception (CP.Invalid_index _ | CP.Wrong_kind _) -> None)
    | _ -> None

(* A live plain check: [Ldc_str perm; Invokestatic check], recognized
   at the invoke. *)
let check_at pool code idx =
  if enforcement_invoke pool code idx ~name:"check" ~desc:Enforcement.desc_check
  then perm_literal pool code (idx - 1)
  else None

(* A live resource-aware check: [Dup; Ldc_str perm; Invokestatic
   checkResource], recognized at the invoke. *)
let resource_check_at pool (code : CF.code) idx =
  if
    enforcement_invoke pool code idx ~name:"checkResource"
      ~desc:Enforcement.desc_check_resource
    && idx >= 2
    && code.CF.instrs.(idx - 2) = I.Dup
  then perm_literal pool code (idx - 1)
  else None

let env policy : Analysis.Certify.env =
  {
    Analysis.Certify.protected_sites = Rewriter.protected_sites policy;
    check_at;
    resource_check_at;
    kill = Analysis.Checks.default_kill;
  }

let certify policy ?cert cf =
  Analysis.Certify.certify_class (env policy) ?cert cf
