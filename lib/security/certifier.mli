(** Policy instantiation of the translation-validating certifier
    ({!Analysis.Certify}): recognizes protected sites and enforcement
    checks for a given policy; all global reasoning is re-derived in
    the analysis layer from the rewritten code alone. *)

val check_at : Bytecode.Cp.t -> Bytecode.Classfile.code -> int -> string option
(** [Some perm] iff the instruction is the invoke of a live plain
    check block [Ldc_str perm; Invokestatic check]. Total in the
    index. *)

val resource_check_at :
  Bytecode.Cp.t -> Bytecode.Classfile.code -> int -> string option
(** Same for [Dup; Ldc_str perm; Invokestatic checkResource]. *)

val env : Policy.t -> Analysis.Certify.env

val certify :
  Policy.t ->
  ?cert:Analysis.Certificate.class_cert ->
  Bytecode.Classfile.t ->
  (Analysis.Certify.stats, Analysis.Certify.reason list) result
