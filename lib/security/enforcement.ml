(* The enforcement manager (§3.2): the small dynamic component residing
   on each client. Rewritten applications call dvm/Enforcement.check
   before resource accesses; the manager resolves the check against the
   centralized policy, caching results. The first check pays for
   downloading the domain's slice of the global policy (Figure 9's
   "download" column); subsequent checks are local lookups. A
   cache-invalidation subscription lets the security server propagate
   access-matrix changes. *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile

let class_name = "dvm/Enforcement"
let desc_check = "(Ljava/lang/String;)V"
let desc_check_resource = "(Ljava/lang/String;Ljava/lang/String;)V"

let runtime_class () =
  let st = [ CF.Public; CF.Static; CF.Native ] in
  B.class_ class_name
    [
      B.native_meth ~flags:st "check" desc_check;
      (* checkResource(resource, permission) *)
      B.native_meth ~flags:st "checkResource" desc_check_resource;
    ]

(* Cost model (cost units ~ µs), calibrated to Figure 9's DVM columns:
   a cached check is a hashtable lookup; the first check downloads the
   policy slice over the intranet. *)
let cost_cached_check = 7L
let cost_policy_download = 5000L

type t = {
  server : Server.t;
  mutable sid : Policy.sid;
  cache : (Policy.permission, bool) Hashtbl.t;
  mutable have_policy : bool;
  mutable default_allow : bool;
  mutable resources : (string * Policy.sid) list;
  mutable checks : int;
  mutable cache_hits : int;
  mutable downloads : int;
  mutable denials : int;
  mutable invalidations : int;
  mutable decisions_rev : (Policy.permission * bool) list;
      (* every (permission, verdict) in reverse order — the
         observational record elision must preserve a subsequence of *)
}

let decisions t = List.rev t.decisions_rev

let set_domain t sid =
  t.sid <- sid;
  Hashtbl.reset t.cache;
  t.have_policy <- false

let invalidate t =
  t.invalidations <- t.invalidations + 1;
  Hashtbl.reset t.cache;
  t.have_policy <- false

let download t vm =
  (match vm with
  | Some vm -> Jvm.Vmstate.add_cost vm cost_policy_download
  | None -> ());
  let rules, default_allow, resources = Server.download_slice t.server ~sid:t.sid in
  Hashtbl.reset t.cache;
  List.iter
    (fun r -> Hashtbl.replace t.cache r.Policy.rule_permission r.Policy.rule_allow)
    rules;
  t.default_allow <- default_allow;
  t.resources <- resources;
  t.have_policy <- true;
  t.downloads <- t.downloads + 1

(* The decision procedure used by the injected checks. *)
let allowed ?vm t permission =
  t.checks <- t.checks + 1;
  if not t.have_policy then download t vm
  else begin
    match vm with
    | Some vm -> Jvm.Vmstate.add_cost vm cost_cached_check
    | None -> ()
  end;
  let verdict =
    match Hashtbl.find_opt t.cache permission with
    | Some v ->
      t.cache_hits <- t.cache_hits + 1;
      v
    | None ->
      (* Permission not in the domain slice: the policy default governs;
         remember it locally. *)
      Hashtbl.replace t.cache permission t.default_allow;
      t.default_allow
  in
  t.decisions_rev <- (permission, verdict) :: t.decisions_rev;
  verdict

(* Resource-qualified decision: the named resource's domain (DTOS
   object SID) qualifies the permission, e.g. "file.read@homedirs". *)
let allowed_resource ?vm t ~permission ~resource =
  if not t.have_policy then download t vm;
  let qualified =
    match
      List.find_opt (fun (p, _) -> Policy.prefix_match p resource) t.resources
    with
    | Some (_, rsid) -> permission ^ "@" ^ rsid
    | None -> permission
  in
  allowed ?vm t qualified

let install vm ~server ~sid =
  let t =
    {
      server;
      sid;
      cache = Hashtbl.create 16;
      have_policy = false;
      default_allow = false;
      resources = [];
      checks = 0;
      cache_hits = 0;
      downloads = 0;
      denials = 0;
      invalidations = 0;
      decisions_rev = [];
    }
  in
  Server.subscribe server (fun () -> invalidate t);
  Jvm.Classreg.register vm.Jvm.Vmstate.reg (runtime_class ());
  (match Jvm.Classreg.find_loaded vm.Jvm.Vmstate.reg class_name with
  | Some l -> l.Jvm.Classreg.init_state <- Jvm.Classreg.Initialized
  | None -> assert false);
  Jvm.Vmstate.register_native vm ~cls:class_name ~name:"check" ~desc:desc_check
    (fun vm args ->
      let permission =
        match args with
        | [ Jvm.Value.Str p ] -> p
        | _ -> Jvm.Vmstate.fault "Enforcement.check: bad arguments"
      in
      if allowed ~vm t permission then None
      else begin
        t.denials <- t.denials + 1;
        Jvm.Vmstate.throw vm ~cls:Jvm.Vmstate.c_security ~message:permission
      end);
  Jvm.Vmstate.register_native vm ~cls:class_name ~name:"checkResource"
    ~desc:desc_check_resource (fun vm args ->
      let resource, permission =
        match args with
        | [ Jvm.Value.Str r; Jvm.Value.Str p ] -> (r, p)
        | _ -> Jvm.Vmstate.fault "Enforcement.checkResource: bad arguments"
      in
      if allowed_resource ~vm t ~permission ~resource then None
      else begin
        t.denials <- t.denials + 1;
        Jvm.Vmstate.throw vm ~cls:Jvm.Vmstate.c_security
          ~message:(permission ^ " on " ^ resource)
      end);
  t
