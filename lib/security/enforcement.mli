(** The enforcement manager (§3.2): the small dynamic component on each
    client.

    Rewritten applications call [dvm/Enforcement.check] before resource
    accesses; the manager resolves checks against the centralized
    policy, caching results. The first check downloads the domain's
    policy slice (Figure 9's "download" column); subsequent checks are
    local lookups. Cache invalidation propagates policy changes. *)

val class_name : string
val desc_check : string
val desc_check_resource : string
val runtime_class : unit -> Bytecode.Classfile.t

val cost_cached_check : int64
val cost_policy_download : int64

type t = {
  server : Server.t;
  mutable sid : Policy.sid;
  cache : (Policy.permission, bool) Hashtbl.t;
  mutable have_policy : bool;
  mutable default_allow : bool;
  mutable resources : (string * Policy.sid) list;
  mutable checks : int;
  mutable cache_hits : int;
  mutable downloads : int;
  mutable denials : int;
  mutable invalidations : int;
  mutable decisions_rev : (Policy.permission * bool) list;
}

val decisions : t -> (Policy.permission * bool) list
(** Every (permission, verdict) decided, in order. The elided program's
    sequence must be a subsequence of the unelided one with identical
    per-permission verdicts. *)

val set_domain : t -> Policy.sid -> unit
val invalidate : t -> unit

val allowed : ?vm:Jvm.Vmstate.t -> t -> Policy.permission -> bool
(** The decision procedure behind the injected checks; also usable
    directly (e.g. by tests and microbenchmarks). *)

val allowed_resource :
  ?vm:Jvm.Vmstate.t -> t -> permission:Policy.permission -> resource:string -> bool
(** Resource-qualified decision: the resource's domain (DTOS object
    SID) qualifies the permission, e.g. ["file.read@homedirs"]. *)

val install : Jvm.Vmstate.t -> server:Server.t -> sid:Policy.sid -> t
(** Register the [dvm/Enforcement] class and native in a client VM and
    subscribe to invalidations. *)
