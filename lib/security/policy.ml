(* The organization-wide security policy (§3.2), derived from DTOS:
   security identifiers (protection domains) relate to permissions
   through an access matrix; named resources map to identifiers; and an
   operation map relates security operations to the application code
   points where access checks must be inserted. *)

type sid = string
type permission = string

type operation = {
  op_permission : permission;
  op_class : string; (* class whose invocation is security-relevant *)
  op_method : string; (* method name; "*" matches any *)
  op_resource_arg : bool;
      (* the call's last String argument names the resource; the check
         then resolves the resource's domain (DTOS object SIDs) *)
}

type rule = { rule_sid : sid; rule_permission : permission; rule_allow : bool }

type t = {
  version : int;
  default_allow : bool;
  rules : rule list;
  resources : (string * sid) list; (* resource-name prefix -> domain *)
  operations : operation list;
  principals : (string * sid) list; (* class-name prefix -> domain *)
}

let empty =
  {
    version = 1;
    default_allow = false;
    rules = [];
    resources = [];
    operations = [];
    principals = [];
  }

(* Access matrix lookup: the most specific (first matching) rule wins;
   otherwise the policy default applies. *)
let decide t ~sid ~permission =
  let rec go = function
    | [] -> t.default_allow
    | r :: rest ->
      if String.equal r.rule_sid sid && String.equal r.rule_permission permission
      then r.rule_allow
      else go rest
  in
  go t.rules

let prefix_match prefix s =
  String.length prefix <= String.length s
  && String.equal prefix (String.sub s 0 (String.length prefix))

let domain_of_resource t name =
  List.find_opt (fun (p, _) -> prefix_match p name) t.resources
  |> Option.map snd

(* The permission actually required for an access to [resource]: named
   resources qualify the permission with their domain, so the access
   matrix can restrict e.g. "file.read@homedirs" separately from plain
   "file.read". *)
let resource_permission t ~permission ~resource =
  match domain_of_resource t resource with
  | Some rsid -> permission ^ "@" ^ rsid
  | None -> permission

let domain_of_class t cls =
  List.find_opt (fun (p, _) -> prefix_match p cls) t.principals
  |> Option.map snd

let operations_for t ~cls ~meth =
  List.filter
    (fun op ->
      String.equal op.op_class cls
      && (String.equal op.op_method "*" || String.equal op.op_method meth))
    t.operations

(* Rules visible to one domain — what the enforcement manager downloads
   on its first check (Figure 9's "download" column). *)
let slice_for_domain t sid =
  List.filter (fun r -> String.equal r.rule_sid sid) t.rules

let with_rule t ~sid ~permission ~allow =
  {
    t with
    version = t.version + 1;
    rules =
      { rule_sid = sid; rule_permission = permission; rule_allow = allow }
      :: List.filter
           (fun r ->
             not
               (String.equal r.rule_sid sid
               && String.equal r.rule_permission permission))
           t.rules;
  }

(* Operation-map updates also bump the version. Unlike [with_rule],
   these change which call sites the rewriter instruments, so classes
   rewritten under the old version are textually different — exactly
   the case the farm's control plane must invalidate across shards. *)
let with_operation t op =
  { t with version = t.version + 1; operations = op :: t.operations }

let without_operation t ~permission =
  {
    t with
    version = t.version + 1;
    operations =
      List.filter
        (fun op -> not (String.equal op.op_permission permission))
        t.operations;
  }

let pp ppf t =
  Format.fprintf ppf "policy v%d (default %s)@\n" t.version
    (if t.default_allow then "allow" else "deny");
  List.iter
    (fun r ->
      Format.fprintf ppf "  %s: %s %s@\n" r.rule_sid
        (if r.rule_allow then "allow" else "deny")
        r.rule_permission)
    t.rules;
  List.iter
    (fun op ->
      Format.fprintf ppf "  op %s at %s.%s@\n" op.op_permission op.op_class
        op.op_method)
    t.operations
