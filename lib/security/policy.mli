(** The organization-wide security policy (§3.2), derived from DTOS.

    Security identifiers (protection domains) relate to permissions
    through an access matrix; named resources map to identifiers; and
    an operation map relates security operations to the application
    code points where access checks are inserted. *)

type sid = string
type permission = string

type operation = {
  op_permission : permission;
  op_class : string;
  op_method : string;  (** ["*"] matches any method *)
  op_resource_arg : bool;
      (** the call's last [String] argument names the resource; the
          check resolves the resource's domain (DTOS object SIDs) *)
}

type rule = { rule_sid : sid; rule_permission : permission; rule_allow : bool }

type t = {
  version : int;
  default_allow : bool;
  rules : rule list;
  resources : (string * sid) list;  (** resource-name prefix → domain *)
  operations : operation list;
  principals : (string * sid) list;  (** class-name prefix → domain *)
}

val empty : t

val decide : t -> sid:sid -> permission:permission -> bool
(** Access-matrix lookup; first matching rule wins, else the default. *)

val prefix_match : string -> string -> bool
val domain_of_resource : t -> string -> sid option

val resource_permission :
  t -> permission:permission -> resource:string -> permission
(** The permission required for an access to a named resource:
    ["file.read@homedirs"] when the resource maps to a domain, the
    plain permission otherwise. *)

val domain_of_class : t -> string -> sid option
val operations_for : t -> cls:string -> meth:string -> operation list

val slice_for_domain : t -> sid -> rule list
(** What an enforcement manager downloads on its first check. *)

val with_rule : t -> sid:sid -> permission:permission -> allow:bool -> t
(** Functional update; bumps the policy version (triggers cache
    invalidation). *)

val with_operation : t -> operation -> t
val without_operation : t -> permission:permission -> t
(** Operation-map updates, also version-bumping. These change which
    call sites the rewriter instruments — classes rewritten under the
    old version are textually different, the case the farm's control
    plane exists to invalidate. [without_operation] removes every
    operation carrying [permission]. *)

val pp : Format.formatter -> t -> unit
