(* The static component of the security service (§3.2): rewrites
   incoming applications so that every security-relevant operation
   named by the policy's operation map is preceded by a call to the
   client's enforcement manager. Because insertion happens at the
   bytecode level on the proxy, checks can guard operations the
   original system designers never anticipated — file read being the
   paper's example.

   On top of the insertion pass sits the proxy-side optimization half:
   a dataflow pass over `lib/analysis` elides a check when an
   identical (sid, permission) check is *available* — has executed on
   every path reaching the site with no intervening invalidation
   point — and hoists a loop-invariant check to the loop preheader.
   Invalidation points are the monitor instructions: those are the
   synchronization points at which a concurrent policy push becomes
   visible, so availability must not survive them (see DESIGN.md,
   "Static analysis at the proxy"). Resource-aware checks are never
   elided: their verdict depends on the runtime resource string. *)

module CF = Bytecode.Classfile
module CP = Bytecode.Cp
module I = Bytecode.Instr

type counters = {
  mutable checks_inserted : int;
  mutable checks_elided : int;
  mutable checks_hoisted : int;
  mutable methods_instrumented : int;
  mutable classes_processed : int;
}

let fresh_counters () =
  {
    checks_inserted = 0;
    checks_elided = 0;
    checks_hoisted = 0;
    methods_instrumented = 0;
    classes_processed = 0;
  }

(* A resource-aware check is only possible when the protected call's
   last parameter is a String sitting on top of the stack at the call
   site. *)
let last_param_is_string desc =
  match Bytecode.Descriptor.method_sig_of_string desc with
  | { Bytecode.Descriptor.params; _ } -> (
    match List.rev params with
    | Bytecode.Descriptor.Obj "java/lang/String" :: _ -> true
    | _ -> false)
  | exception Bytecode.Descriptor.Bad_descriptor _ -> false

(* Find the call sites in a method that the operation map covers, with
   the permission each requires and whether the resource name is
   available on the stack. *)
let protected_sites policy pool (code : CF.code) =
  let sites = ref [] in
  Array.iteri
    (fun idx insn ->
      match insn with
      | I.Invokevirtual k | I.Invokestatic k | I.Invokespecial k
      | I.Invokeinterface k -> (
        match CP.get_methodref pool k with
        | mr ->
          List.iter
            (fun op ->
              let with_resource =
                op.Policy.op_resource_arg
                && last_param_is_string mr.CP.ref_desc
              in
              sites := (idx, op.Policy.op_permission, with_resource) :: !sites)
            (Policy.operations_for policy ~cls:mr.CP.ref_class
               ~meth:mr.CP.ref_name)
        | exception (CP.Invalid_index _ | CP.Wrong_kind _) -> ())
      | _ -> ())
    code.CF.instrs;
  List.rev !sites

let check_block pool permission ~with_resource =
  if with_resource then
    (* stack: [.., resource] -> dup the resource name and pass it with
       the permission: checkResource(resource, permission) *)
    [
      I.Dup;
      I.Ldc_str (CP.Builder.string pool permission);
      I.Invokestatic
        (CP.Builder.methodref pool ~cls:Enforcement.class_name
           ~name:"checkResource" ~desc:Enforcement.desc_check_resource);
    ]
  else
    [
      I.Ldc_str (CP.Builder.string pool permission);
      I.Invokestatic
        (CP.Builder.methodref pool ~cls:Enforcement.class_name ~name:"check"
           ~desc:Enforcement.desc_check);
    ]

(* --- The elision pass. --- *)

(* Instructions that are observably pure for the hoisting argument:
   they cannot throw, write shared state, allocate, or perform I/O, so
   executing a hoisted check before them instead of after is
   indistinguishable (the check itself either passes silently or
   throws before anything visible happened). Local writes count as
   unobservable only because [elision_plan] refuses to hoist out of a
   loop covered by an exception handler — a same-method handler
   catching the denial could otherwise observe locals written before
   an in-loop check but not before a hoisted one. *)
let hoist_transparent = function
  | I.Nop | I.Iconst _ | I.Ldc_str _ | I.Aconst_null | I.Iload _ | I.Istore _
  | I.Aload _ | I.Astore _ | I.Iinc _ | I.Iadd | I.Isub | I.Imul | I.Ineg
  | I.Ishl | I.Ishr | I.Iand | I.Ior | I.Ixor | I.Dup | I.Dup_x1 | I.Pop
  | I.Swap | I.Goto _ | I.If_icmp _ | I.If_z _ | I.If_acmp _ | I.If_null _
  | I.Instanceof _ ->
    true
  | _ -> false

(* The builder's counted-loop idiom guards the first trip with the
   counter's initial constant: preheader ends `iconst n; istore c` and
   the header opens `iload c; ifXX exit`. When the initial value
   proves the exit untaken, the first iteration definitely runs and
   the guard edge can be discounted by the anticipability walk. *)
let first_trip_guard (code : CF.code) (header : Analysis.Cfg.block)
    (preheader : Analysis.Cfg.block) =
  let open Analysis.Cfg in
  if header.last < header.first + 1 then None
  else
    match (code.CF.instrs.(header.first), code.CF.instrs.(header.first + 1)) with
    | I.Iload c, I.If_z (cmp, _) when preheader.last >= preheader.first + 1 -> (
      match
        (code.CF.instrs.(preheader.last - 1), code.CF.instrs.(preheader.last))
      with
      | I.Iconst n, I.Istore c' when c = c' ->
        let n = Int32.to_int n in
        let taken =
          match cmp with
          | I.Eq -> n = 0
          | I.Ne -> n <> 0
          | I.Lt -> n < 0
          | I.Ge -> n >= 0
          | I.Gt -> n > 0
          | I.Le -> n <= 0
        in
        if taken then None (* zero-trip loop: never hoist *)
        else Some (header.first + 1) (* the guard branch to discount *)
      | _ -> None)
    | _ -> None

(* Anticipability: from the header, every intra-loop path must reach
   the site before any non-transparent instruction, any loop exit, or
   any return to the header — then hoisting the check moves it across
   nothing observable. [guard] is a conditional whose exit edge is
   statically untaken on the first trip. *)
let anticipable (cfg : Analysis.Cfg.t) ~(in_loop : int -> bool) ~header_first
    ~guard ~site =
  let code = cfg.Analysis.Cfg.code in
  let n = Array.length code.CF.instrs in
  let visiting = Hashtbl.create 16 in
  let rec walk idx =
    if idx = site then true
    else if idx < 0 || idx >= n then false
    else if not (in_loop cfg.Analysis.Cfg.block_of.(idx)) then false
    else if idx = header_first && Hashtbl.length visiting > 0 then
      false (* wrapped around without meeting the site *)
    else if Hashtbl.mem visiting idx then false
    else begin
      Hashtbl.replace visiting idx ();
      let ins = code.CF.instrs.(idx) in
      let ok =
        if not (hoist_transparent ins) then false
        else
          let succs = I.successors idx ins in
          let succs =
            (* Discount the statically-untaken exit edge of the
               first-trip guard. *)
            if guard = Some idx then
              List.filter (fun s -> s = idx + 1) succs
            else succs
          in
          succs <> [] && List.for_all walk succs
      in
      Hashtbl.remove visiting idx;
      ok
    end
  in
  walk header_first

type decision = {
  insert : (int * string * bool) list; (* surviving sites *)
  hoists : (int * string) list; (* header instruction index, permission *)
  elided_sites : (int * string) list;
      (* plain sites dropped because the permission is available *)
  hoisted_sites : (int * string * int) list;
      (* sites whose check moved to a preheader: site, permission,
         header instruction index (all original coordinates) *)
  elided : int;
  hoisted : int;
}

let no_elision sites =
  {
    insert = sites;
    hoists = [];
    elided_sites = [];
    hoisted_sites = [];
    elided = 0;
    hoisted = 0;
  }

(* Decide which of [sites] can be dropped. Pure analysis over the
   original code: the result feeds straight into the patcher. *)
let elision_plan (code : CF.code) sites : decision =
  match Analysis.Cfg.of_code code with
  | exception Analysis.Cfg.Malformed _ -> no_elision sites
  | cfg ->
    (* Availability: every site generates its permission (for an
       elided site the dominating check it relies on already provides
       the fact — union is idempotent); monitor instructions kill. *)
    let gen_tbl = Hashtbl.create 16 in
    List.iter
      (fun (idx, p, with_resource) ->
        if not with_resource then
          Hashtbl.replace gen_tbl idx
            (p :: Option.value ~default:[] (Hashtbl.find_opt gen_tbl idx)))
      sites;
    let avail =
      Analysis.Checks.analyze cfg ~gen:(fun idx ->
          Option.value ~default:[] (Hashtbl.find_opt gen_tbl idx))
    in
    let by_avail, rest =
      List.partition
        (fun (idx, p, with_resource) ->
          (not with_resource)
          && Analysis.Checks.available avail ~at:idx ~fact:p)
        sites
    in
    (* Loop-invariant hoisting for the survivors. *)
    let dom = lazy (Analysis.Dom.compute cfg) in
    let loops = lazy (Analysis.Dom.loops (Lazy.force dom)) in
    let kill_free body =
      Hashtbl.fold
        (fun b () acc ->
          acc
          &&
          let blk = Analysis.Cfg.block cfg b in
          let ok = ref true in
          for i = blk.Analysis.Cfg.first to blk.Analysis.Cfg.last do
            if Analysis.Checks.default_kill code.CF.instrs.(i) then ok := false
          done;
          !ok)
        body true
    in
    (* A handler covering any part of the loop body can catch the
       denial exception and observe locals; an in-loop check throws
       after the iteration's local writes, a hoisted one before them,
       so the handler would see different state. Never hoist out of a
       handler-covered loop. *)
    let handler_free body =
      Hashtbl.fold
        (fun b () acc ->
          acc
          &&
          let blk = Analysis.Cfg.block cfg b in
          List.for_all
            (fun h ->
              blk.Analysis.Cfg.last < h.CF.h_start
              || blk.Analysis.Cfg.first >= h.CF.h_end)
            code.CF.handlers)
        body true
    in
    let hoists = ref [] in
    let hoisted_sites = ref [] in
    let hoisted_certs = ref [] in
    List.iter
      (fun ((idx, p, with_resource) as site) ->
        (* resource-aware sites are never hoisted *)
        if not with_resource then begin
          let b = cfg.Analysis.Cfg.block_of.(idx) in
          let candidate =
            List.find_opt
              (fun l ->
                Hashtbl.mem l.Analysis.Dom.body b
                && kill_free l.Analysis.Dom.body
                && handler_free l.Analysis.Dom.body
                &&
                let header = Analysis.Cfg.block cfg l.Analysis.Dom.header in
                (* The site must run on every iteration… *)
                List.for_all
                  (fun latch -> Analysis.Dom.dominates (Lazy.force dom) b latch)
                  l.Analysis.Dom.latches
                &&
                (* …and the header must be enterable only by falling
                   through from a unique preheader (or via back
                   edges), so a fall-through-only insertion covers
                   every loop entry. *)
                let outside_preds, ok_shape =
                  List.fold_left
                    (fun (outs, ok) (pb, kind) ->
                      if kind = Analysis.Cfg.Exn then (outs, false)
                      else if Hashtbl.mem l.Analysis.Dom.body pb then (outs, ok)
                      else ((pb, kind) :: outs, ok))
                    ([], true) header.Analysis.Cfg.preds
                in
                ok_shape
                &&
                match outside_preds with
                | [ (pb, Analysis.Cfg.Fall) ] -> (
                  let preheader = Analysis.Cfg.block cfg pb in
                  match first_trip_guard code header preheader with
                  | None ->
                    anticipable cfg
                      ~in_loop:(Hashtbl.mem l.Analysis.Dom.body)
                      ~header_first:header.Analysis.Cfg.first ~guard:None
                      ~site:idx
                  | Some g ->
                    anticipable cfg
                      ~in_loop:(Hashtbl.mem l.Analysis.Dom.body)
                      ~header_first:header.Analysis.Cfg.first ~guard:(Some g)
                      ~site:idx)
                | _ -> false)
              (Lazy.force loops)
          in
          match candidate with
          | Some l ->
            let header = Analysis.Cfg.block cfg l.Analysis.Dom.header in
            if not (List.mem (header.Analysis.Cfg.first, p) !hoists) then
              hoists := (header.Analysis.Cfg.first, p) :: !hoists;
            hoisted_sites := site :: !hoisted_sites;
            hoisted_certs := (idx, p, header.Analysis.Cfg.first) :: !hoisted_certs
          | None -> ()
        end)
      rest;
    let insert =
      List.filter (fun s -> not (List.memq s !hoisted_sites)) rest
    in
    {
      insert;
      hoists = List.rev !hoists;
      elided_sites = List.map (fun (idx, p, _) -> (idx, p)) by_avail;
      hoisted_sites = List.rev !hoisted_certs;
      elided = List.length by_avail + List.length !hoisted_sites;
      hoisted = List.length !hoists;
    }

(* Certificate emission: the elision plan speaks original-code
   coordinates, certificates must speak rewritten-code coordinates the
   validator sees — the patch layout is the bridge. The support of an
   availability elision is every surviving plain check of the same
   permission (the solver, not the list, is the proof; the list is the
   audit trail the validator cross-checks element-wise). *)
let method_entries (plan : decision) (layout : Rewrite.Patch.layout) :
    Analysis.Certificate.entry list =
  let starts = layout.Rewrite.Patch.l_starts in
  let n_insert = List.length plan.insert in
  let support_of p =
    let s = ref [] in
    List.iteri
      (fun i (_, perm, with_resource) ->
        (* plain check blocks are [Ldc_str; Invokestatic]: the invoke
           sits one past the block start *)
        if (not with_resource) && String.equal perm p then
          s := (starts.(i) + 1) :: !s)
      plan.insert;
    List.iteri
      (fun j (_, perm) ->
        if String.equal perm p then s := (starts.(n_insert + j) + 1) :: !s)
      plan.hoists;
    List.sort compare !s
  in
  let hoist_check_site p header_first =
    let rec find j = function
      | [] -> -1
      | (h, perm) :: tl ->
        if h = header_first && String.equal perm p then starts.(n_insert + j) + 1
        else find (j + 1) tl
    in
    find 0 plan.hoists
  in
  List.map
    (fun (idx, p) ->
      {
        Analysis.Certificate.ce_site = layout.Rewrite.Patch.l_instr.(idx);
        ce_fact = Analysis.Certificate.Available_check p;
        ce_kind = Analysis.Certificate.Elided { support = support_of p };
      })
    plan.elided_sites
  @ List.map
      (fun (idx, p, header_first) ->
        {
          Analysis.Certificate.ce_site = layout.Rewrite.Patch.l_instr.(idx);
          ce_fact = Analysis.Certificate.Available_check p;
          ce_kind =
            Analysis.Certificate.Hoisted
              {
                check_site = hoist_check_site p header_first;
                header = layout.Rewrite.Patch.l_target.(header_first);
              };
        })
      plan.hoisted_sites

let rewrite_class ?(counters = fresh_counters ()) ?(elide = true) ?certs policy
    (cf : CF.t) : CF.t =
  counters.classes_processed <- counters.classes_processed + 1;
  let pool = CP.Builder.of_pool cf.CF.pool in
  let method_certs = ref [] in
  let methods =
    List.map
      (fun m ->
        match m.CF.m_code with
        | None -> m
        | Some code ->
          let sites = protected_sites policy (CP.Builder.to_pool pool) code in
          if sites = [] then m
          else begin
            counters.methods_instrumented <- counters.methods_instrumented + 1;
            let plan =
              if elide then elision_plan code sites else no_elision sites
            in
            counters.checks_elided <- counters.checks_elided + plan.elided;
            counters.checks_hoisted <- counters.checks_hoisted + plan.hoisted;
            Telemetry.Global.add "security.checks_elided"
              (Int64.of_int plan.elided);
            let insertions =
              List.map
                (fun (at, permission, with_resource) ->
                  Rewrite.Patch.before at
                    (check_block pool permission ~with_resource))
                plan.insert
              @ List.map
                  (fun (at, permission) ->
                    Rewrite.Patch.before ~redirect:false at
                      (check_block pool permission ~with_resource:false))
                  plan.hoists
            in
            counters.checks_inserted <-
              counters.checks_inserted + List.length insertions;
            if insertions = [] then m
            else begin
              let code, layout =
                Rewrite.Patch.apply_insertions_layout code insertions
              in
              (if certs <> None then
                 match method_entries plan layout with
                 | [] -> ()
                 | entries ->
                   method_certs :=
                     {
                       Analysis.Certificate.mc_name = m.CF.m_name;
                       mc_desc = m.CF.m_desc;
                       mc_entries = entries;
                     }
                     :: !method_certs);
              let sg = Bytecode.Descriptor.method_sig_of_string m.CF.m_desc in
              let code =
                Rewrite.Patch.recompute (CP.Builder.to_pool pool)
                  ~params:(Bytecode.Descriptor.param_slots sg)
                  ~is_static:(CF.has_flag m.CF.m_flags CF.Static)
                  code
              in
              { m with CF.m_code = Some code }
            end
          end)
      cf.CF.methods
  in
  (match certs with
  | None -> ()
  | Some store ->
    (* Recording an empty certificate clears any stale entry from a
       previous rewrite of the same class name. *)
    Analysis.Certificate.record store
      {
        Analysis.Certificate.cc_name = cf.CF.name;
        cc_methods = List.rev !method_certs;
      });
  { cf with CF.methods; pool = CP.Builder.to_pool pool }

let filter ?counters ?elide ?certs policy =
  Rewrite.Filter.make ~name:"security"
    (rewrite_class ?counters ?elide ?certs policy)
