(** The static component of the security service (§3.2).

    Rewrites incoming applications so every security-relevant operation
    named by the policy's operation map is preceded by a call to the
    client's enforcement manager. Insertion at the bytecode level means
    checks can guard operations the original system designers never
    anticipated — file read being the paper's example.

    With [elide] on (the default), a proxy-side dataflow pass over
    {!Analysis} drops a check when an identical permission check is
    available on every path with no intervening invalidation point
    (monitor instructions), and hoists loop-invariant checks to the
    loop preheader. Resource-aware checks are never elided. *)

type counters = {
  mutable checks_inserted : int;  (** checks physically inserted *)
  mutable checks_elided : int;  (** sites proven redundant and dropped *)
  mutable checks_hoisted : int;  (** preheader checks added by hoisting *)
  mutable methods_instrumented : int;
  mutable classes_processed : int;
}

val fresh_counters : unit -> counters

val protected_sites :
  Policy.t ->
  Bytecode.Cp.t ->
  Bytecode.Classfile.code ->
  (int * string * bool) list
(** Call sites the operation map covers:
    [(index, permission, with_resource)]. *)

val check_block :
  Bytecode.Cp.Builder.t ->
  string ->
  with_resource:bool ->
  Bytecode.Instr.t list

val rewrite_class :
  ?counters:counters ->
  ?elide:bool ->
  ?certs:Analysis.Certificate.store ->
  Policy.t ->
  Bytecode.Classfile.t ->
  Bytecode.Classfile.t
(** With [certs], every elided or hoisted check deposits an elision
    certificate (in rewritten-code coordinates) into the store, keyed
    by class name, for the {!Certifier} gate to re-prove. *)

val filter :
  ?counters:counters ->
  ?elide:bool ->
  ?certs:Analysis.Certificate.store ->
  Policy.t ->
  Rewrite.Filter.t
