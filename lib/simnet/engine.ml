(* Discrete-event simulation engine. Time is in integer microseconds.
   Events fire in (time, insertion order) — ties break FIFO so models
   are deterministic. *)

type time = int64

type event = { at : time; seq : int; fn : unit -> unit }

(* Binary min-heap on (at, seq). *)
module Heap = struct
  type t = { mutable data : event array; mutable size : int }

  let dummy = { at = 0L; seq = 0; fn = ignore }
  let create () = { data = Array.make 256 dummy; size = 0 }

  let less a b = if Int64.equal a.at b.at then a.seq < b.seq else Int64.compare a.at b.at < 0

  let swap h i j =
    let t = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- t

  let push h e =
    if h.size >= Array.length h.data then begin
      let bigger = Array.make (2 * Array.length h.data) dummy in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- e;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && less h.data.(!i) h.data.((!i - 1) / 2) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      h.data.(h.size) <- dummy;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
        if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          swap h !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end

  (* The horizon check only needs to *look* at the earliest event; a
     pop-then-push round trip costs two sift passes for nothing. *)
  let peek h = if h.size = 0 then None else Some h.data.(0)
end

type t = {
  mutable now : time;
  heap : Heap.t;
  mutable next_seq : int;
  mutable events_processed : int;
  (* During a run, per-event counter updates are batched into these and
     flushed once when the loop exits — the totals (and the final
     queue-depth gauge, which is the heap size at exit) are exactly
     what the per-event writes produced, without two hashtable lookups
     per event. *)
  mutable in_run : bool;
  mutable sched_batch : int;
  (* Optional deterministic event trace: models call [record] at the
     points they consider observable (a request served, a shard chosen)
     and tests compare whole traces across runs. Newest first. An
     optional cap bounds the buffer; records past it are counted, not
     kept. *)
  mutable tracing : bool;
  mutable trace_buf : (time * string) list;
  mutable trace_len : int;
  mutable trace_cap : int option;
  mutable trace_dropped : int;
}

let create () =
  {
    now = 0L;
    heap = Heap.create ();
    next_seq = 0;
    events_processed = 0;
    in_run = false;
    sched_batch = 0;
    tracing = false;
    trace_buf = [];
    trace_len = 0;
    trace_cap = None;
    trace_dropped = 0;
  }

let now t = t.now

let set_tracing t on =
  t.tracing <- on;
  t.trace_buf <- [];
  t.trace_len <- 0;
  t.trace_dropped <- 0

let set_trace_cap t cap =
  (match cap with
  | Some c when c < 0 -> invalid_arg "Engine.set_trace_cap: negative cap"
  | Some _ | None -> ());
  t.trace_cap <- cap

let record t label =
  if t.tracing then begin
    match t.trace_cap with
    | Some cap when t.trace_len >= cap ->
      t.trace_dropped <- t.trace_dropped + 1
    | Some _ | None ->
      t.trace_buf <- (t.now, label) :: t.trace_buf;
      t.trace_len <- t.trace_len + 1
  end

let trace t = List.rev t.trace_buf
let trace_dropped t = t.trace_dropped

let schedule_at t at fn =
  let at = if Int64.compare at t.now < 0 then t.now else at in
  Heap.push t.heap { at; seq = t.next_seq; fn };
  t.next_seq <- t.next_seq + 1;
  if Telemetry.Global.on () then
    if t.in_run then t.sched_batch <- t.sched_batch + 1
    else begin
      Telemetry.Global.incr "simnet.events.scheduled";
      Telemetry.Global.set_gauge "simnet.queue.depth"
        (Int64.of_int t.heap.Heap.size)
    end

let schedule t ~delay fn = schedule_at t (Int64.add t.now delay) fn

let run_loop ?until t =
  let processed = ref 0 in
  let flush () =
    t.in_run <- false;
    if (!processed > 0 || t.sched_batch > 0) && Telemetry.Global.on () then begin
      if t.sched_batch > 0 then
        Telemetry.Global.add "simnet.events.scheduled"
          (Int64.of_int t.sched_batch);
      if !processed > 0 then
        Telemetry.Global.add "simnet.events.processed"
          (Int64.of_int !processed);
      (* The last per-event gauge write always reflected the heap as it
         stood when the loop exited — one write says the same thing. *)
      Telemetry.Global.set_gauge "simnet.queue.depth"
        (Int64.of_int t.heap.Heap.size)
    end;
    t.sched_batch <- 0
  in
  t.in_run <- true;
  Fun.protect ~finally:flush (fun () ->
      let continue = ref true in
      while !continue do
        match Heap.peek t.heap with
        | None -> continue := false
        | Some e -> (
          match until with
          | Some stop when Int64.compare e.at stop > 0 ->
            (* Past the horizon: leave it queued and stop. *)
            t.now <- stop;
            continue := false
          | Some _ | None ->
            ignore (Heap.pop t.heap);
            t.now <- e.at;
            t.events_processed <- t.events_processed + 1;
            if Telemetry.Global.on () then incr processed;
            e.fn ())
      done)

let run_inner ?until t =
  if not (Telemetry.Global.on ()) then run_loop ?until t
  else begin
    (* Expose the virtual clock to telemetry for the duration of the
       run, so spans opened inside event handlers carry simulated
       timestamps alongside wall-clock ones. *)
    let reg = Telemetry.default in
    let prev_sim = Telemetry.sim_clock reg in
    Telemetry.set_sim_clock reg (Some (fun () -> t.now));
    let sim0 = t.now in
    let wall0 = Int64.of_float (Unix.gettimeofday () *. 1e6) in
    let finish () =
      let sim_elapsed = Int64.sub t.now sim0 in
      let wall_elapsed =
        Int64.sub (Int64.of_float (Unix.gettimeofday () *. 1e6)) wall0
      in
      Telemetry.Global.add "simnet.virtual_us" sim_elapsed;
      if Int64.compare wall_elapsed 0L > 0 then
        Telemetry.Global.set_gauge "simnet.virtual_wall_ratio_x1000"
          (Int64.div (Int64.mul sim_elapsed 1000L) wall_elapsed);
      Telemetry.set_sim_clock reg prev_sim
    in
    match
      Telemetry.Global.with_span ~cat:"simnet" "simnet.run" (fun () ->
          run_loop ?until t)
    with
    | () -> finish ()
    | exception e ->
      finish ();
      raise e
  end

let run ?until t =
  (* The distributed-trace collector reads time through its own clock;
     point it at virtual time for the whole run (whether or not the
     metrics registry is enabled — tracing can be on independently). *)
  let prev_trace_clock = Telemetry.Trace.current_clock () in
  Telemetry.Trace.set_clock (fun () -> t.now);
  Fun.protect
    ~finally:(fun () -> Telemetry.Trace.set_clock prev_trace_clock)
    (fun () -> run_inner ?until t)

let us n = Int64.of_int n
let ms n = Int64.of_int (n * 1000)
let sec n = Int64.of_int (n * 1_000_000)
let to_ms t = Int64.to_float t /. 1000.
let to_sec t = Int64.to_float t /. 1_000_000.

let events_processed t = t.events_processed
