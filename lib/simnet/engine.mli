(** Discrete-event simulation engine.

    Time is in integer microseconds. Events fire in
    (time, insertion-order): ties break FIFO, so models are
    deterministic. *)

type time = int64
type t

val create : unit -> t
val now : t -> time
val events_processed : t -> int

val schedule_at : t -> time -> (unit -> unit) -> unit
(** Times in the past are clamped to now. *)

val schedule : t -> delay:time -> (unit -> unit) -> unit

val run : ?until:time -> t -> unit
(** Process events until the queue drains (or past the horizon). *)

(** {1 Deterministic event traces}

    Models call {!record} at the points they consider observable (a
    request served, a shard chosen); determinism tests compare whole
    traces across runs. Recording is off by default and free when
    off. *)

val set_tracing : t -> bool -> unit
(** Enable or disable recording; either way the buffer is cleared. *)

val record : t -> string -> unit
(** Append [(now, label)] to the trace when tracing is on. *)

val trace : t -> (time * string) list
(** The recorded trace, in chronological (firing) order. *)

val set_trace_cap : t -> int option -> unit
(** Bound the trace buffer: once it holds that many records, further
    {!record} calls count into {!trace_dropped} instead of growing the
    buffer. [None] (the default) is unbounded. The cap applies from
    now on — an already-larger buffer is left intact.
    @raise Invalid_argument on a negative cap. *)

val trace_dropped : t -> int
(** Records dropped by the cap since tracing was last (re)enabled. *)

(** Time constructors and conversions. *)

val us : int -> time
val ms : int -> time
val sec : int -> time
val to_ms : time -> float
val to_sec : time -> float
