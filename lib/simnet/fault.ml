(* Seedable deterministic fault models (the availability evaluation the
   paper's §5 replicated-proxy argument calls for but never runs).

   A fault plan owns a private splitmix64 stream, so two simulations
   built from the same seed draw identical loss/jitter decisions and
   produce identical event traces — fault experiments are replayable
   bit-for-bit. Every injected fault is appended to a trace (virtual
   timestamp + description) that tests and the bench compare across
   runs. *)

type t = {
  seed : int;
  mutable state : int64;
  mutable drops : int;
  mutable crashes : int;
  mutable restarts : int;
  mutable partitions : int;
  mutable events : string list; (* newest first *)
}

let create ~seed =
  {
    seed;
    (* Mix the seed once so small seeds don't start in a low-entropy
       region of the stream. *)
    state = Int64.mul (Int64.of_int (seed + 1)) 0x9E3779B97F4A7C15L;
    drops = 0;
    crashes = 0;
    restarts = 0;
    partitions = 0;
    events = [];
  }

let seed t = t.seed

(* splitmix64: tiny, fast, and stable across OCaml versions (unlike
   the stdlib Random, whose algorithm is not a compatibility
   promise). *)
let next_u64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [0, 1): the top 53 bits scaled down. *)
let uniform t =
  Int64.to_float (Int64.shift_right_logical (next_u64 t) 11)
  *. (1.0 /. 9007199254740992.0)

(* Threshold draw: a transfer dropped at loss rate p is also dropped at
   any p' > p while the streams stay aligned, which keeps loss sweeps
   monotone until histories diverge. *)
let flip t ~p = p > 0.0 && uniform t < p

let jitter_us t ~max_us =
  if max_us <= 0 then 0L else Int64.of_float (uniform t *. Float.of_int max_us)

(* Uniform int in [0, max): the draw chaos schedules use to place
   crash windows, pick victim shards and stagger load spikes. *)
let range t ~max = if max <= 0 then 0 else int_of_float (uniform t *. Float.of_int max)

let record t ~at what =
  t.events <- Printf.sprintf "%Ld %s" at what :: t.events

let trace t = List.rev t.events
let drops t = t.drops
let crashes t = t.crashes
let restarts t = t.restarts
let partitions t = t.partitions

let count_drop t ~at what =
  t.drops <- t.drops + 1;
  record t ~at what

(* Crash/restart schedule for a host: at each [crash_at] the host goes
   down for [down_for]; the restart retains [mem_retained] of the
   host's working memory (0.0 = cold start) and runs [on_restart] so
   owners can clear warm state the crash lost (e.g. a class cache). *)
let schedule_host_faults t (host : Host.t) ?(mem_retained = 0.0) ?on_restart
    ~schedule () =
  let engine = host.Host.engine in
  List.iter
    (fun (crash_at, down_for) ->
      Engine.schedule_at engine crash_at (fun () ->
          if host.Host.up then begin
            Host.crash host;
            t.crashes <- t.crashes + 1;
            record t ~at:(Engine.now engine)
              (Printf.sprintf "crash %s" host.Host.name);
            Telemetry.Global.incr "simnet.crashes"
          end);
      Engine.schedule_at engine (Int64.add crash_at down_for) (fun () ->
          if not host.Host.up then begin
            Host.restart ~mem_retained host;
            t.restarts <- t.restarts + 1;
            record t ~at:(Engine.now engine)
              (Printf.sprintf "restart %s" host.Host.name);
            Telemetry.Global.incr "simnet.restarts";
            Option.iter (fun f -> f ()) on_restart
          end))
    schedule

(* Partition schedule: at each [start] the partition opens (the caller's
   [set true] makes the affected links lose everything) and [len] later
   it heals. [set] is a closure rather than a link so one schedule can
   sever a whole bundle of links atomically — and so this module does
   not depend on [Link], which depends on it. *)
let schedule_partition t engine ~what ~set ~schedule () =
  List.iter
    (fun (start, len) ->
      Engine.schedule_at engine start (fun () ->
          set true;
          t.partitions <- t.partitions + 1;
          record t ~at:(Engine.now engine) (Printf.sprintf "partition %s" what);
          Telemetry.Global.incr "simnet.partitions");
      Engine.schedule_at engine (Int64.add start len) (fun () ->
          set false;
          record t ~at:(Engine.now engine) (Printf.sprintf "heal %s" what)))
    schedule
