(** Seedable deterministic fault models.

    A fault plan owns a private splitmix64 stream: two simulations
    built from the same seed draw identical loss/jitter decisions and
    produce identical traces. Attach a plan to a link with
    {!Link.set_faults} and to a host with {!schedule_host_faults};
    every injected fault is appended to a replayable trace. *)

type t

val create : seed:int -> t
val seed : t -> int

(** {1 Deterministic draws} *)

val flip : t -> p:float -> bool
(** One Bernoulli draw. Threshold form: a draw that fires at
    probability [p] also fires at any higher probability while the
    streams stay aligned, keeping loss-rate sweeps monotone. *)

val jitter_us : t -> max_us:int -> int64
(** Uniform in [\[0, max_us)]; [0] when [max_us <= 0]. *)

val range : t -> max:int -> int
(** Uniform int in [\[0, max)]; [0] when [max <= 0]. Chaos schedules
    draw crash times, victim shards and spike offsets from this. *)

(** {1 Fault trace} *)

val record : t -> at:Engine.time -> string -> unit
val trace : t -> string list
(** Injected faults in order, each ["<virtual µs> <description>"]. *)

val drops : t -> int
val crashes : t -> int
val restarts : t -> int

val partitions : t -> int
(** Partition windows opened so far. *)

val count_drop : t -> at:Engine.time -> string -> unit
(** Used by {!Link}: bump the drop counter and append to the trace. *)

(** {1 Host crash/restart schedules} *)

val schedule_host_faults :
  t ->
  Host.t ->
  ?mem_retained:float ->
  ?on_restart:(unit -> unit) ->
  schedule:(Engine.time * Engine.time) list ->
  unit ->
  unit
(** For each [(crash_at, down_for)]: crash the host at [crash_at] and
    restart it [down_for] later. The restart keeps [mem_retained]
    (default 0.0 — a cold start) of the host's working memory and then
    runs [on_restart], where the owner clears warm state the crash
    lost (e.g. a class cache). Counters: [simnet.crashes],
    [simnet.restarts]. *)

(** {1 Network-partition schedules} *)

val schedule_partition :
  t ->
  Engine.t ->
  what:string ->
  set:(bool -> unit) ->
  schedule:(Engine.time * Engine.time) list ->
  unit ->
  unit
(** For each [(start, len)]: call [set true] at [start] and [set false]
    at [start + len]. [set] is a closure — typically
    [Link.set_partitioned link], or a function severing a whole bundle
    of links at once — so a schedule can partition any cut of the
    network atomically. Each window appends ["partition <what>"] /
    ["heal <what>"] to the trace and bumps [simnet.partitions]. *)
