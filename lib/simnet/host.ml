(* Simulated hosts: a single serializing CPU with a speed factor
   relative to the paper's 200 MHz PentiumPro reference machines, and a
   memory budget. Memory pressure does not fail allocations — it makes
   work slower (the paging behaviour behind Figure 10's saturation
   knee). *)

type t = {
  engine : Engine.t;
  name : string;
  cpu_factor : float; (* 1.0 = reference machine *)
  mem_capacity : int; (* bytes *)
  mutable mem_used : int;
  mutable busy_until : Engine.time;
  mutable cpu_busy : Engine.time; (* total busy µs, for utilization *)
  mutable jobs : int;
  (* Penalty multiplier applied to work while memory is
     over-committed. *)
  thrash_factor : float;
  (* Availability: a crashed host refuses new work and abandons work
     in flight. The epoch ticks on every crash so completions
     scheduled before it can tell they were lost. *)
  mutable up : bool;
  mutable epoch : int;
  mutable crashes : int;
}

let create ?(cpu_factor = 1.0) ?(mem_capacity = 64 * 1024 * 1024)
    ?(thrash_factor = 14.0) engine ~name =
  {
    engine;
    name;
    cpu_factor;
    mem_capacity;
    mem_used = 0;
    busy_until = 0L;
    cpu_busy = 0L;
    jobs = 0;
    thrash_factor;
    up = true;
    epoch = 0;
    crashes = 0;
  }

let is_up t = t.up

let crash t =
  if t.up then begin
    t.up <- false;
    t.epoch <- t.epoch + 1;
    t.crashes <- t.crashes + 1
  end

(* Restart after a crash: queued work is gone (the epoch already
   ticked), the CPU comes back idle, and only [mem_retained] of the
   working memory survives — 0.0 models a cold start whose caches and
   per-request state must be rebuilt. *)
let restart ?(mem_retained = 1.0) t =
  if not t.up then begin
    t.up <- true;
    t.busy_until <- Engine.now t.engine;
    t.mem_used <-
      max 0 (int_of_float (Float.of_int t.mem_used *. mem_retained))
  end

(* How far the CPU's commitments already extend past the present — the
   queueing delay a request admitted now would wait before its own work
   starts. Admission control sheds on this. *)
let backlog_us t =
  let now = Engine.now t.engine in
  if Int64.compare t.busy_until now > 0 then Int64.sub t.busy_until now else 0L

let mem_pressure t =
  if t.mem_capacity <= 0 then 0.0
  else Float.of_int t.mem_used /. Float.of_int t.mem_capacity

let effective_cost t ~cost_us =
  let base = Float.of_int (Int64.to_int cost_us) /. t.cpu_factor in
  let pressure = mem_pressure t in
  let slowdown =
    if pressure <= 1.0 then 1.0
    else 1.0 +. ((pressure -. 1.0) *. t.thrash_factor)
  in
  Int64.of_float (base *. slowdown)

(* Run [cost_us] of work on the host's CPU; [k] fires at completion.
   Work serializes behind whatever the CPU is already committed to.
   On a down host — or if the host crashes before the work completes —
   [on_fail] fires instead (nothing at all happens without one). *)
let compute t ?on_fail ~cost_us k =
  let now = Engine.now t.engine in
  if not t.up then
    match on_fail with
    | Some f -> Engine.schedule_at t.engine now f
    | None -> ()
  else begin
    let epoch = t.epoch in
    let start = if Int64.compare t.busy_until now > 0 then t.busy_until else now in
    let cost = effective_cost t ~cost_us in
    let finish = Int64.add start cost in
    t.busy_until <- finish;
    t.cpu_busy <- Int64.add t.cpu_busy cost;
    t.jobs <- t.jobs + 1;
    Engine.schedule_at t.engine finish (fun () ->
        if t.up && t.epoch = epoch then k ()
        else match on_fail with Some f -> f () | None -> ())
  end

let allocate t bytes = t.mem_used <- t.mem_used + bytes
let release t bytes = t.mem_used <- max 0 (t.mem_used - bytes)

let utilization t =
  let now = Engine.now t.engine in
  if Int64.equal now 0L then 0.0
  else Int64.to_float t.cpu_busy /. Int64.to_float now
