(** Simulated hosts.

    A single serializing CPU with a speed factor relative to the
    paper's 200 MHz PentiumPro reference machines, and a memory budget.
    Memory pressure does not fail allocations — it slows work down (the
    paging behaviour behind Figure 10's saturation knee). *)

type t = {
  engine : Engine.t;
  name : string;
  cpu_factor : float;
  mem_capacity : int;
  mutable mem_used : int;
  mutable busy_until : Engine.time;
  mutable cpu_busy : Engine.time;
  mutable jobs : int;
  thrash_factor : float;
  mutable up : bool;
  mutable epoch : int;  (** ticks on every crash *)
  mutable crashes : int;
}

val create :
  ?cpu_factor:float ->
  ?mem_capacity:int ->
  ?thrash_factor:float ->
  Engine.t ->
  name:string ->
  t
(** Defaults: reference CPU, 64 MB memory (the paper's proxy). *)

val backlog_us : t -> Engine.time
(** How far the CPU's commitments extend past the present: the queueing
    delay work admitted now would wait before starting. 0 when idle. *)

val mem_pressure : t -> float
val effective_cost : t -> cost_us:Engine.time -> Engine.time

val compute :
  t -> ?on_fail:(unit -> unit) -> cost_us:Engine.time -> (unit -> unit) -> unit
(** Serialize [cost_us] of work behind the CPU's queue; the
    continuation fires at completion. If the host is down at submit
    time, or crashes before the work completes, [on_fail] fires
    instead (and nothing at all happens without one). *)

val allocate : t -> int -> unit
val release : t -> int -> unit
val utilization : t -> float

(** {1 Availability} *)

val is_up : t -> bool

val crash : t -> unit
(** Take the host down: new work fails, in-flight work is abandoned
    (the epoch ticks). Idempotent while down. *)

val restart : ?mem_retained:float -> t -> unit
(** Bring a crashed host back with an idle CPU, keeping [mem_retained]
    (default 1.0) of its working memory — 0.0 is a cold start. *)
