(* Network links with bandwidth and latency. A link is a serializing
   resource: transmissions queue behind one another (the shared-medium
   behaviour of the paper's 10 Mb/s Ethernet), then propagate with the
   link latency. *)

(* Fault profile attached to a link: each transfer draws a loss
   decision at [drop_prob] and, if delivered, a propagation jitter
   uniform in [0, jitter_max_us) — both from the plan's deterministic
   stream. *)
type faults = {
  plan : Fault.t;
  drop_prob : float;
  jitter_max_us : int;
}

type t = {
  engine : Engine.t;
  name : string;
  bandwidth_bps : int; (* bits per second *)
  latency : Engine.time;
  mutable busy_until : Engine.time;
  mutable bytes_carried : int;
  mutable transfers : int;
  mutable faults : faults option;
  mutable drops : int;
  mutable partitioned : bool; (* partition window open: every transfer lost *)
  mutable partition_drops : int;
}

let create engine ~name ~bandwidth_bps ~latency =
  {
    engine;
    name;
    bandwidth_bps;
    latency;
    busy_until = 0L;
    bytes_carried = 0;
    transfers = 0;
    faults = None;
    drops = 0;
    partitioned = false;
    partition_drops = 0;
  }

let set_faults t ~plan ?(drop_prob = 0.0) ?(jitter_max_us = 0) () =
  t.faults <- Some { plan; drop_prob; jitter_max_us }

let clear_faults t = t.faults <- None

let set_partitioned t v = t.partitioned <- v

(* Transmission time for [bytes] at the link rate, in µs. *)
let tx_time t ~bytes =
  Int64.of_float (Float.of_int bytes *. 8.0 *. 1_000_000.0
                  /. Float.of_int t.bandwidth_bps)

(* Start (or queue) a transfer; [k] runs when the last byte arrives.
   Under a fault profile the transfer may instead be lost: it still
   occupies the wire (the bytes were transmitted, then dropped in
   flight), [k] never runs, and [on_drop] — if any — fires when the
   last byte would have arrived, for models that want to observe the
   loss directly rather than through a timeout. *)
let transfer t ?on_drop ~bytes k =
  let now = Engine.now t.engine in
  let start = if Int64.compare t.busy_until now > 0 then t.busy_until else now in
  let done_tx = Int64.add start (tx_time t ~bytes) in
  t.busy_until <- done_tx;
  t.bytes_carried <- t.bytes_carried + bytes;
  t.transfers <- t.transfers + 1;
  let arrival = Int64.add done_tx t.latency in
  if t.partitioned then begin
    (* A partition loses every transfer — no probability draw, so the
       plan's random stream stays aligned with the unpartitioned run
       and digests outside the window are comparable. *)
    t.partition_drops <- t.partition_drops + 1;
    Telemetry.Global.incr "simnet.partition_drops";
    match on_drop with
    | Some g -> Engine.schedule_at t.engine arrival g
    | None -> ()
  end
  else
  match t.faults with
  | Some f when Fault.flip f.plan ~p:f.drop_prob ->
    t.drops <- t.drops + 1;
    Fault.count_drop f.plan ~at:now
      (Printf.sprintf "drop %s %dB" t.name bytes);
    Telemetry.Global.incr "simnet.drops";
    (match on_drop with
    | Some g -> Engine.schedule_at t.engine arrival g
    | None -> ())
  | Some f ->
    Engine.schedule_at t.engine
      (Int64.add arrival (Fault.jitter_us f.plan ~max_us:f.jitter_max_us))
      k
  | None -> Engine.schedule_at t.engine arrival k

(* The pure-math variant used by closed-form startup models. *)
let transfer_time_us ~bandwidth_bps ~latency_us ~bytes =
  latency_us + int_of_float (Float.of_int bytes *. 8.0 *. 1_000_000.0 /. Float.of_int bandwidth_bps)

(* Common link presets from the paper's evaluation. *)
let ethernet_10mb engine = create engine ~name:"ethernet" ~bandwidth_bps:10_000_000 ~latency:(Engine.us 500)
let modem_28_8k engine = create engine ~name:"modem" ~bandwidth_bps:28_800 ~latency:(Engine.ms 100)

let utilization t =
  let now = Engine.now t.engine in
  if Int64.equal now 0L then 0.0
  else
    Float.of_int t.bytes_carried *. 8.0
    /. (Float.of_int t.bandwidth_bps *. Engine.to_sec now)
