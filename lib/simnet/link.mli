(** Network links with bandwidth and latency.

    A link is a serializing resource: transmissions queue behind one
    another (the shared-medium behaviour of the paper's 10 Mb/s
    Ethernet), then propagate with the link latency. *)

type faults = {
  plan : Fault.t;
  drop_prob : float;
  jitter_max_us : int;
}

type t = {
  engine : Engine.t;
  name : string;
  bandwidth_bps : int;
  latency : Engine.time;
  mutable busy_until : Engine.time;
  mutable bytes_carried : int;
  mutable transfers : int;
  mutable faults : faults option;
  mutable drops : int;
  mutable partitioned : bool;
  mutable partition_drops : int;
}

val create :
  Engine.t -> name:string -> bandwidth_bps:int -> latency:Engine.time -> t

val set_faults :
  t -> plan:Fault.t -> ?drop_prob:float -> ?jitter_max_us:int -> unit -> unit
(** Attach a fault profile: each transfer draws a loss decision at
    [drop_prob] and, when delivered, a propagation jitter uniform in
    [\[0, jitter_max_us)] — both from [plan]'s deterministic stream. *)

val clear_faults : t -> unit

val set_partitioned : t -> bool -> unit
(** Open or close a network-partition window on this link. While open,
    {e every} transfer is lost (no probability draw, so the fault
    plan's random stream stays aligned with an unpartitioned run);
    [on_drop] still fires at would-be arrival and losses are counted in
    [partition_drops] / [simnet.partition_drops], separate from
    probabilistic [drops]. Schedule windows with
    {!Fault.schedule_partition}. *)

val tx_time : t -> bytes:int -> Engine.time

val transfer : t -> ?on_drop:(unit -> unit) -> bytes:int -> (unit -> unit) -> unit
(** Queue [bytes] on the wire; the continuation runs when the last
    byte arrives. A transfer lost to the fault profile still occupies
    the wire but the continuation never runs; [on_drop], if given,
    fires when the last byte would have arrived. Counter:
    [simnet.drops]. *)

val transfer_time_us : bandwidth_bps:int -> latency_us:int -> bytes:int -> int
(** Closed-form single-transfer time for analytic startup models. *)

val ethernet_10mb : Engine.t -> t
val modem_28_8k : Engine.t -> t
val utilization : t -> float
