(* Per-node flight recorder: a bounded ring of recent observability
   lines (span completions, reason events), kept per simulated host so
   a post-mortem dump shows what each node saw just before an invariant
   violation.  The ring is deliberately tiny and always writable — the
   cost of a note is an array store — so callers (the trace collector)
   gate on their own enabled flag, not ours. *)

type entry = { fl_at : int64; fl_node : string; fl_line : string }

type ring = {
  mutable buf : entry option array;
  mutable next : int;  (* slot for the next write *)
  mutable total : int;  (* lifetime notes, for the dropped count *)
}

let default_capacity = 256
let capacity = ref default_capacity
let rings : (string, ring) Hashtbl.t = Hashtbl.create 8

let reset () = Hashtbl.reset rings

let set_capacity n =
  capacity := max 1 n;
  reset ()

let ring_for node =
  match Hashtbl.find_opt rings node with
  | Some r -> r
  | None ->
    let r = { buf = Array.make !capacity None; next = 0; total = 0 } in
    Hashtbl.add rings node r;
    r

let note ~at ~node line =
  let r = ring_for node in
  r.buf.(r.next) <- Some { fl_at = at; fl_node = node; fl_line = line };
  r.next <- (r.next + 1) mod Array.length r.buf;
  r.total <- r.total + 1

let nodes () = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) rings [])

(* Oldest-to-newest unrolling of one ring. *)
let ring_entries r =
  let n = Array.length r.buf in
  let acc = ref [] in
  (* Slot [next] holds the oldest entry once the ring has wrapped;
     walking indices downward and consing leaves the list oldest-first. *)
  for i = n - 1 downto 0 do
    match r.buf.((r.next + i) mod n) with
    | Some e -> acc := e :: !acc
    | None -> ()
  done;
  !acc

let entries ?node () =
  match node with
  | Some n -> (
    match Hashtbl.find_opt rings n with Some r -> ring_entries r | None -> [])
  | None ->
    List.concat_map
      (fun n -> ring_entries (Hashtbl.find rings n))
      (nodes ())
    |> List.stable_sort (fun a b -> Int64.compare a.fl_at b.fl_at)

let esc s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let dump_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"flight_recorder\":[";
  List.iteri
    (fun i node ->
      if i > 0 then Buffer.add_char b ',';
      let r = Hashtbl.find rings node in
      let kept = ring_entries r in
      Buffer.add_string b
        (Printf.sprintf "\n{\"node\":\"%s\",\"noted\":%d,\"dropped\":%d,\"entries\":["
           (esc node) r.total
           (max 0 (r.total - List.length kept)));
      List.iteri
        (fun j e ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\n {\"at_us\":%Ld,\"line\":\"%s\"}" e.fl_at
               (esc e.fl_line)))
        kept;
      Buffer.add_string b "]}")
    (nodes ());
  Buffer.add_string b "]}\n";
  Buffer.contents b
