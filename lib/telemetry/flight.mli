(** Per-node flight recorder.

    A bounded ring of recent observability lines per simulated host —
    span completions and decision events as one-line summaries — dumped
    as JSON when a chaos invariant trips or on demand via
    [dvmctl flight].  Rings overwrite oldest-first; writes never
    allocate beyond the ring.  Callers gate on their own enabled flag
    (the trace collector only notes lines for live traces). *)

type entry = { fl_at : int64; fl_node : string; fl_line : string }

val note : at:int64 -> node:string -> string -> unit
val nodes : unit -> string list
(** Sorted node names with at least one note. *)

val entries : ?node:string -> unit -> entry list
(** Retained entries, oldest first; without [node], merged across all
    nodes in timestamp order. *)

val dump_json : unit -> string
(** All rings as one JSON object, nodes sorted, entries oldest first,
    with per-node noted/dropped counts. *)

val set_capacity : int -> unit
(** Ring size per node (default 256). Clears existing rings. *)

val reset : unit -> unit

val esc : string -> string
(** JSON string escaping (shared with the trace exporters). *)
