(* SLO monitor: rolling goodput, deadline-violation rate and
   error-budget burn, computed from per-request outcomes as traces
   settle.  Time is bucketed per second into a ring sized to the
   window; all arithmetic is integer except the final rates, so a
   seeded simulation reports identical numbers run to run.

   "Good" means a fresh reply within deadline.  Stale serves and
   outright failures both violate the objective (the paper's executive
   would have seen a stale applet or an error page); sheds are tracked
   separately because admission control converts them into fast
   failures on purpose. *)

type outcome = Fresh of int  (** body bytes *) | Stale | Failed

type bucket = {
  mutable b_sec : int;  (* absolute second this bucket holds, -1 = empty *)
  mutable b_requests : int;
  mutable b_fresh : int;
  mutable b_fresh_bytes : int;
  mutable b_stale : int;
  mutable b_failed : int;
  mutable b_sheds : int;
}

type t = {
  window_s : int;
  objective : float;  (* target fraction of requests served fresh *)
  buckets : bucket array;
  mutable total_requests : int;
  mutable total_fresh : int;
  mutable total_fresh_bytes : int;
  mutable total_stale : int;
  mutable total_failed : int;
  mutable total_sheds : int;
}

let create ?(window_s = 10) ?(objective = 0.99) () =
  {
    window_s = max 1 window_s;
    objective;
    buckets =
      Array.init (max 1 window_s) (fun _ ->
          {
            b_sec = -1;
            b_requests = 0;
            b_fresh = 0;
            b_fresh_bytes = 0;
            b_stale = 0;
            b_failed = 0;
            b_sheds = 0;
          });
    total_requests = 0;
    total_fresh = 0;
    total_fresh_bytes = 0;
    total_stale = 0;
    total_failed = 0;
    total_sheds = 0;
  }

let bucket_at t ~now_us =
  let sec = Int64.to_int (Int64.div now_us 1_000_000L) in
  let b = t.buckets.(sec mod t.window_s) in
  if b.b_sec <> sec then begin
    b.b_sec <- sec;
    b.b_requests <- 0;
    b.b_fresh <- 0;
    b.b_fresh_bytes <- 0;
    b.b_stale <- 0;
    b.b_failed <- 0;
    b.b_sheds <- 0
  end;
  b

let record t ~now_us outcome =
  let b = bucket_at t ~now_us in
  b.b_requests <- b.b_requests + 1;
  t.total_requests <- t.total_requests + 1;
  match outcome with
  | Fresh bytes ->
    b.b_fresh <- b.b_fresh + 1;
    b.b_fresh_bytes <- b.b_fresh_bytes + bytes;
    t.total_fresh <- t.total_fresh + 1;
    t.total_fresh_bytes <- t.total_fresh_bytes + bytes
  | Stale ->
    b.b_stale <- b.b_stale + 1;
    t.total_stale <- t.total_stale + 1
  | Failed ->
    b.b_failed <- b.b_failed + 1;
    t.total_failed <- t.total_failed + 1

let note_shed t ~now_us =
  let b = bucket_at t ~now_us in
  b.b_sheds <- b.b_sheds + 1;
  t.total_sheds <- t.total_sheds + 1

type report = {
  r_window_s : int;
  r_span_s : int;  (** seconds actually observed, <= window *)
  r_requests : int;  (** in window *)
  r_fresh : int;
  r_stale : int;
  r_failed : int;
  r_sheds : int;
  r_goodput_bps : float;
  r_violation_rate : float;
  r_budget_burn : float;
  r_total_requests : int;
  r_total_fresh : int;
  r_total_stale : int;
  r_total_failed : int;
  r_total_sheds : int;
  r_total_violation_rate : float;
  r_total_budget_burn : float;
}

let rate ~bad ~total = if total = 0 then 0.0 else float_of_int bad /. float_of_int total

let burn t ~violation = violation /. max 1e-9 (1.0 -. t.objective)

let report t ~now_us =
  let sec = Int64.to_int (Int64.div now_us 1_000_000L) in
  let req = ref 0 and fresh = ref 0 and bytes = ref 0 in
  let stale = ref 0 and failed = ref 0 and sheds = ref 0 in
  let oldest = ref max_int in
  Array.iter
    (fun b ->
      if b.b_sec >= 0 && b.b_sec <= sec && sec - b.b_sec < t.window_s then begin
        if b.b_sec < !oldest then oldest := b.b_sec;
        req := !req + b.b_requests;
        fresh := !fresh + b.b_fresh;
        bytes := !bytes + b.b_fresh_bytes;
        stale := !stale + b.b_stale;
        failed := !failed + b.b_failed;
        sheds := !sheds + b.b_sheds
      end)
    t.buckets;
  let violation = rate ~bad:(!req - !fresh) ~total:!req in
  let total_violation =
    rate ~bad:(t.total_requests - t.total_fresh) ~total:t.total_requests
  in
  (* Divide by the seconds actually observed, not the nominal window:
     during warm-up (fewer than [window_s] seconds of traffic) the old
     full-window divisor underreported goodput by up to the warm-up
     ratio. Capped at [window_s]; an empty window reports over 1 s. *)
  let span =
    if !oldest = max_int then 1 else min t.window_s (sec - !oldest + 1)
  in
  let span = max 1 span in
  {
    r_window_s = t.window_s;
    r_span_s = span;
    r_requests = !req;
    r_fresh = !fresh;
    r_stale = !stale;
    r_failed = !failed;
    r_sheds = !sheds;
    r_goodput_bps = float_of_int !bytes /. float_of_int span;
    r_violation_rate = violation;
    r_budget_burn = burn t ~violation;
    r_total_requests = t.total_requests;
    r_total_fresh = t.total_fresh;
    r_total_stale = t.total_stale;
    r_total_failed = t.total_failed;
    r_total_sheds = t.total_sheds;
    r_total_violation_rate = total_violation;
    r_total_budget_burn = burn t ~violation:total_violation;
  }

let report_json r =
  Printf.sprintf
    "{\"window_s\":%d,\"span_s\":%d,\"requests\":%d,\"fresh\":%d,\"stale\":%d,\"failed\":%d,\"sheds\":%d,\"goodput_bps\":%.1f,\"violation_rate\":%.6f,\"budget_burn\":%.4f,\"total_requests\":%d,\"total_fresh\":%d,\"total_stale\":%d,\"total_failed\":%d,\"total_sheds\":%d,\"total_violation_rate\":%.6f,\"total_budget_burn\":%.4f}"
    r.r_window_s r.r_span_s r.r_requests r.r_fresh r.r_stale r.r_failed
    r.r_sheds r.r_goodput_bps r.r_violation_rate r.r_budget_burn
    r.r_total_requests r.r_total_fresh r.r_total_stale r.r_total_failed
    r.r_total_sheds r.r_total_violation_rate r.r_total_budget_burn

let report_text r =
  Printf.sprintf
    "SLO (last %ds window, %ds observed)\n\
    \  requests            %d (fresh %d, stale %d, failed %d; sheds %d)\n\
    \  goodput             %.1f B/s\n\
    \  violation rate      %.4f\n\
    \  error-budget burn   %.2fx\n\
     cumulative\n\
    \  requests            %d (fresh %d, stale %d, failed %d; sheds %d)\n\
    \  violation rate      %.4f\n\
    \  error-budget burn   %.2fx\n"
    r.r_window_s r.r_span_s r.r_requests r.r_fresh r.r_stale r.r_failed
    r.r_sheds r.r_goodput_bps r.r_violation_rate r.r_budget_burn
    r.r_total_requests r.r_total_fresh r.r_total_stale r.r_total_failed
    r.r_total_sheds r.r_total_violation_rate r.r_total_budget_burn
