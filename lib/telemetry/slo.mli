(** SLO monitor: rolling goodput, deadline-violation rate and
    error-budget burn.

    Client sessions feed one outcome per settled request; the monitor
    buckets them per simulated second into a ring covering the window.
    "Good" = fresh reply within deadline; stale serves and failures
    both count against the objective, sheds are tracked alongside.
    Everything is integer arithmetic until the final rates, so seeded
    runs report identical numbers. *)

type t

type outcome = Fresh of int  (** body bytes *) | Stale | Failed

val create : ?window_s:int -> ?objective:float -> unit -> t
(** [window_s] defaults to 10 simulated seconds; [objective] is the
    target fresh fraction (default 0.99). *)

val record : t -> now_us:int64 -> outcome -> unit
val note_shed : t -> now_us:int64 -> unit
(** An admission shed observed by the client (it may still retry and
    settle fresh; sheds are accounted separately from outcomes). *)

type report = {
  r_window_s : int;
  r_span_s : int;
      (** seconds actually observed (capped at [r_window_s]); the
          goodput divisor, so warm-up does not underreport *)
  r_requests : int;  (** in window *)
  r_fresh : int;
  r_stale : int;
  r_failed : int;
  r_sheds : int;
  r_goodput_bps : float;  (** fresh bytes per observed second *)
  r_violation_rate : float;  (** 1 - fresh/requests over the window *)
  r_budget_burn : float;  (** violation rate / (1 - objective) *)
  r_total_requests : int;
  r_total_fresh : int;
  r_total_stale : int;
  r_total_failed : int;
  r_total_sheds : int;
  r_total_violation_rate : float;
  r_total_budget_burn : float;
}

val report : t -> now_us:int64 -> report
val report_json : report -> string
val report_text : report -> string
