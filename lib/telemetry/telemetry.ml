(* System telemetry: spans, counters and latency histograms with a
   global registry, a near-zero-cost disabled path, and two exporters —
   a Chrome trace_event JSON stream (loadable in Perfetto / about:tracing)
   and a plain-text metrics snapshot.

   Spans are keyed to two timelines at once: the wall clock (what the
   process actually spent) and, when a simulation is running, the
   Simnet engine's virtual clock (injected via [set_sim_clock], so
   telemetry never depends on the simulator). Every operation on a
   disabled registry returns after a single [enabled] flag check. *)

type clock = unit -> int64

(* --- Log-scale latency histograms. ---

   Bucket [i] counts observations v with 2^(i-1) <= v < 2^i (bucket 0
   counts v <= 0 and v = 1 lands in bucket 1). 63 buckets cover the
   whole non-negative int64 range in microseconds. *)

let hist_buckets = 63

type hist = {
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : int64;
  mutable h_min : int64;
  mutable h_max : int64;
}

let hist_create () =
  {
    buckets = Array.make hist_buckets 0;
    h_count = 0;
    h_sum = 0L;
    h_min = Int64.max_int;
    h_max = Int64.min_int;
  }

let bucket_of v =
  if Int64.compare v 1L < 0 then 0
  else begin
    (* index of the highest set bit, plus one *)
    let rec bits acc v = if Int64.equal v 0L then acc else bits (acc + 1) (Int64.shift_right_logical v 1) in
    min (hist_buckets - 1) (bits 0 v)
  end

let hist_observe h v =
  let i = bucket_of v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- Int64.add h.h_sum v;
  if Int64.compare v h.h_min < 0 then h.h_min <- v;
  if Int64.compare v h.h_max > 0 then h.h_max <- v

(* Approximate quantile: walk buckets to the one holding the q-th
   observation and report its upper bound (clamped to the true max). *)
let hist_quantile h q =
  if h.h_count = 0 then 0L
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.h_count))) in
    let seen = ref 0 and result = ref h.h_max in
    (try
       for i = 0 to hist_buckets - 1 do
         seen := !seen + h.buckets.(i);
         if !seen >= rank then begin
           result := (if i = 0 then 0L else Int64.shift_left 1L i);
           raise Exit
         end
       done
     with Exit -> ());
    if Int64.compare !result h.h_max > 0 then h.h_max else !result
  end

type hist_stats = {
  count : int;
  sum_us : int64;
  min_us : int64;
  max_us : int64;
  p50_us : int64;
  p95_us : int64;
  p99_us : int64;
}

(* --- Spans. --- *)

type span = {
  sp_id : int;
  sp_name : string;
  sp_cat : string;
  sp_depth : int; (* nesting depth at entry; 0 = top level *)
  sp_wall_start : int64; (* µs *)
  sp_wall_end : int64;
  sp_sim_start : int64 option; (* simulated µs, when a sim clock is set *)
  sp_sim_end : int64 option;
  sp_args : (string * string) list;
}

(* --- Capture/replay tapes. ---

   A tape is the recorded sequence of telemetry effects some
   computation performed: counter adds, gauge sets, histogram
   observations and span open/close brackets, in order. Replaying a
   tape re-performs those effects against the registry's *live* state
   — fresh span ids, current clocks, the ambient distributed-trace
   scope — so a memoized computation can skip the work while leaving
   every aggregate (counts, sums, span totals, trace leaves) exactly
   as a real run would have. Counter/gauge/observe values are
   re-applied verbatim; span timestamps are taken live, which under a
   simulation clock reproduces the original durations exactly (the
   captured computation was synchronous, so both elapse zero virtual
   time). *)

type op =
  | Op_add of string * int64
  | Op_set_gauge of string * int64
  | Op_observe of string * int64
  | Op_span_open of {
      o_name : string;
      o_cat : string;
      o_args : (string * string) list;
      o_hist : bool; (* the original span carried ?observe_hist *)
    }
  | Op_span_close

type tape = op list (* in execution order *)

type t = {
  mutable enabled : bool;
  mutable wall_clock : clock;
  mutable sim_clock : clock option;
  counters : (string, int64 ref) Hashtbl.t;
  gauges : (string, int64 ref) Hashtbl.t;
  histograms : (string, hist) Hashtbl.t;
  mutable spans : span list; (* completion order, newest first *)
  mutable span_count : int;
  mutable dropped : int;
  max_spans : int;
  mutable depth : int;
  mutable next_id : int;
  mutable tape_rev : op list ref option; (* active capture, ops newest first *)
}

let wall_now () = Int64.of_float (Unix.gettimeofday () *. 1e6)

let create ?(max_spans = 200_000) () =
  {
    enabled = false;
    wall_clock = wall_now;
    sim_clock = None;
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 32;
    spans = [];
    span_count = 0;
    dropped = 0;
    max_spans;
    depth = 0;
    next_id = 0;
    tape_rev = None;
  }

let default = create ()

let enabled t = t.enabled
let enable t = t.enabled <- true
let disable t = t.enabled <- false

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histograms;
  t.spans <- [];
  t.span_count <- 0;
  t.dropped <- 0;
  t.depth <- 0;
  t.next_id <- 0

let set_wall_clock t c = t.wall_clock <- c
let set_sim_clock t c = t.sim_clock <- c
let sim_clock t = t.sim_clock

(* --- Counters and gauges. --- *)

let cell tbl name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
    let r = ref 0L in
    Hashtbl.replace tbl name r;
    r

(* Record one op on the active capture, if any. Call sites only reach
   this when the registry is enabled, so a disabled registry captures
   an empty tape — matching the zero effects it performed. *)
let tape_op t op =
  match t.tape_rev with Some r -> r := op :: !r | None -> ()

let add t name by = if t.enabled then begin
    let r = cell t.counters name in
    r := Int64.add !r by;
    tape_op t (Op_add (name, by))
  end

let incr t name = add t name 1L

let set_gauge t name v =
  if t.enabled then begin
    cell t.gauges name := v;
    tape_op t (Op_set_gauge (name, v))
  end

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0L

let gauge_value t name =
  match Hashtbl.find_opt t.gauges name with Some r -> !r | None -> 0L

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let gauges t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.gauges []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- Histograms. --- *)

let observe t name v =
  if t.enabled then begin
    let h =
      match Hashtbl.find_opt t.histograms name with
      | Some h -> h
      | None ->
        let h = hist_create () in
        Hashtbl.replace t.histograms name h;
        h
    in
    hist_observe h v;
    tape_op t (Op_observe (name, v))
  end

let histogram_stats t name =
  match Hashtbl.find_opt t.histograms name with
  | None -> None
  | Some h ->
    Some
      {
        count = h.h_count;
        sum_us = h.h_sum;
        min_us = (if h.h_count = 0 then 0L else h.h_min);
        max_us = (if h.h_count = 0 then 0L else h.h_max);
        p50_us = hist_quantile h 0.5;
        p95_us = hist_quantile h 0.95;
        p99_us = hist_quantile h 0.99;
      }

let histograms t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.histograms []
  |> List.sort String.compare
  |> List.filter_map (fun k ->
         Option.map (fun s -> (k, s)) (histogram_stats t k))

(* --- Spans. --- *)

let record_span t sp =
  if t.span_count >= t.max_spans then t.dropped <- t.dropped + 1
  else begin
    t.spans <- sp :: t.spans;
    t.span_count <- t.span_count + 1
  end

let with_span ?(cat = "app") ?(args = []) ?observe_hist t name f =
  if not t.enabled then f ()
  else if
    (* Saturated span buffer, nothing else watching: the span would be
       dropped on the floor anyway, so skip both clock reads and the
       record allocation. Everything observable — the depth counter and
       the dropped tally — still updates. *)
    t.span_count >= t.max_spans && observe_hist = None && Trace.current () = None
  then begin
    tape_op t (Op_span_open { o_name = name; o_cat = cat; o_args = args; o_hist = false });
    t.next_id <- t.next_id + 1;
    let depth = t.depth in
    t.depth <- depth + 1;
    let finish () =
      t.depth <- depth;
      t.dropped <- t.dropped + 1;
      tape_op t Op_span_close
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end
  else begin
    tape_op t
      (Op_span_open
         { o_name = name; o_cat = cat; o_args = args; o_hist = observe_hist <> None });
    let id = t.next_id in
    t.next_id <- id + 1;
    let depth = t.depth in
    t.depth <- depth + 1;
    let wall_start = t.wall_clock () in
    let sim_start = Option.map (fun c -> c ()) t.sim_clock in
    let finish () =
      t.depth <- depth;
      let wall_end = t.wall_clock () in
      let sim_end = Option.map (fun c -> c ()) t.sim_clock in
      record_span t
        {
          sp_id = id;
          sp_name = name;
          sp_cat = cat;
          sp_depth = depth;
          sp_wall_start = wall_start;
          sp_wall_end = wall_end;
          sp_sim_start = sim_start;
          sp_sim_end = sim_end;
          sp_args = args;
        };
      (* When a sim clock is attached the histogram gets the simulated
         duration: benches must never mix virtual and host time in one
         distribution, or seeded runs stop being reproducible. *)
      (match observe_hist with
      | Some hname -> (
        match (sim_start, sim_end) with
        | Some s0, Some s1 -> observe t hname (Int64.sub s1 s0)
        | _ -> observe t hname (Int64.sub wall_end wall_start))
      | None -> ());
      (* If a distributed-trace scope is ambient, the span doubles as a
         leaf of that request's cross-node tree (sim timestamps when
         available, so it lines up with the wire spans). *)
      (match Trace.current () with
      | None -> ()
      | Some _ ->
        let t0, t1 =
          match (sim_start, sim_end) with
          | Some s0, Some s1 -> (s0, s1)
          | _ -> (wall_start, wall_end)
        in
        Trace.leaf ~args:(("cat", cat) :: args) ~name ~start_us:t0 ~end_us:t1 ());
      tape_op t Op_span_close
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* --- Capture and replay. --- *)

let capture t f =
  match t.tape_rev with
  | Some _ ->
    (* A capture is already active: the outer capture owns the ops.
       The inner caller gets no tape, so it cannot memoize a partial
       recording. *)
    (f (), None)
  | None ->
    let r = ref [] in
    t.tape_rev <- Some r;
    let finish () = t.tape_rev <- None in
    (match f () with
    | v ->
      finish ();
      (v, Some (List.rev !r))
    | exception e ->
      finish ();
      raise e)

type replay_frame =
  | Rf_saturated of int (* saved depth *)
  | Rf_live of {
      rf_id : int;
      rf_depth : int;
      rf_name : string;
      rf_cat : string;
      rf_args : (string * string) list;
      rf_wall_start : int64;
      rf_sim_start : int64 option;
    }

let replay t tape =
  if t.enabled then begin
    let stack = ref [] in
    List.iter
      (fun op ->
        match op with
        | Op_add (n, v) -> add t n v
        | Op_set_gauge (n, v) -> set_gauge t n v
        | Op_observe (n, v) -> observe t n v
        | Op_span_open ({ o_name; o_cat; o_args; o_hist } as o) ->
          tape_op t (Op_span_open o);
          (* Mirror with_span's entry decision against the *live*
             registry state, so a replayed span saturates (or not)
             exactly as a re-run would. *)
          if
            t.span_count >= t.max_spans && (not o_hist)
            && Trace.current () = None
          then begin
            t.next_id <- t.next_id + 1;
            let depth = t.depth in
            t.depth <- depth + 1;
            stack := Rf_saturated depth :: !stack
          end
          else begin
            let id = t.next_id in
            t.next_id <- id + 1;
            let depth = t.depth in
            t.depth <- depth + 1;
            stack :=
              Rf_live
                {
                  rf_id = id;
                  rf_depth = depth;
                  rf_name = o_name;
                  rf_cat = o_cat;
                  rf_args = o_args;
                  rf_wall_start = t.wall_clock ();
                  rf_sim_start = Option.map (fun c -> c ()) t.sim_clock;
                }
              :: !stack
          end
        | Op_span_close -> (
          tape_op t Op_span_close;
          match !stack with
          | [] -> () (* unbalanced tape; nothing sensible to close *)
          | Rf_saturated depth :: rest ->
            stack := rest;
            t.depth <- depth;
            t.dropped <- t.dropped + 1
          | Rf_live f :: rest ->
            stack := rest;
            t.depth <- f.rf_depth;
            let wall_end = t.wall_clock () in
            let sim_end = Option.map (fun c -> c ()) t.sim_clock in
            record_span t
              {
                sp_id = f.rf_id;
                sp_name = f.rf_name;
                sp_cat = f.rf_cat;
                sp_depth = f.rf_depth;
                sp_wall_start = f.rf_wall_start;
                sp_wall_end = wall_end;
                sp_sim_start = f.rf_sim_start;
                sp_sim_end = sim_end;
                sp_args = f.rf_args;
              };
            (* The captured span's ?observe_hist observation replays as
               its own Op_observe; only the distributed-trace leaf is
               re-emitted live, under whatever scope is ambient now. *)
            (match Trace.current () with
            | None -> ()
            | Some _ ->
              let t0, t1 =
                match (f.rf_sim_start, sim_end) with
                | Some s0, Some s1 -> (s0, s1)
                | _ -> (f.rf_wall_start, wall_end)
              in
              Trace.leaf
                ~args:(("cat", f.rf_cat) :: f.rf_args)
                ~name:f.rf_name ~start_us:t0 ~end_us:t1 ())))
      tape
  end

let spans t = List.rev t.spans
let span_count t = t.span_count
let dropped_spans t = t.dropped

(* --- Chrome trace_event exporter. ---

   One JSON event per line inside a JSON array, which both Perfetto
   and chrome://tracing load directly. Spans become complete ("X")
   events on pid 1 (wall-clock timeline) and, when simulated times
   were captured, duplicate "X" events on pid 2 (virtual timeline).
   Counters are emitted as a final "C" sample. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_args args =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
         args)
  ^ "}"

let chrome_trace t =
  let events = ref [] in
  let emit e = events := e :: !events in
  emit
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"wall clock\"}}";
  emit
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":1,\"args\":{\"name\":\"simulated time\"}}";
  let all = spans t in
  (* Rebase wall timestamps so the trace starts near t=0. *)
  let base =
    List.fold_left
      (fun acc sp -> if Int64.compare sp.sp_wall_start acc < 0 then sp.sp_wall_start else acc)
      Int64.max_int all
  in
  let base = if Int64.equal base Int64.max_int then 0L else base in
  let last_ts = ref 0L in
  List.iter
    (fun sp ->
      let ts = Int64.sub sp.sp_wall_start base in
      let dur =
        let d = Int64.sub sp.sp_wall_end sp.sp_wall_start in
        if Int64.compare d 1L < 0 then 1L else d
      in
      if Int64.compare ts !last_ts > 0 then last_ts := ts;
      let args =
        sp.sp_args
        @ (match sp.sp_sim_start with
          | Some s -> [ ("sim_ts_us", Int64.to_string s) ]
          | None -> [])
        @ [ ("depth", string_of_int sp.sp_depth) ]
      in
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%Ld,\"dur\":%Ld,\"pid\":1,\"tid\":1,\"args\":%s}"
           (json_escape sp.sp_name) (json_escape sp.sp_cat) ts dur
           (json_args args));
      match (sp.sp_sim_start, sp.sp_sim_end) with
      | Some s0, Some s1 ->
        let sdur = Int64.sub s1 s0 in
        let sdur = if Int64.compare sdur 1L < 0 then 1L else sdur in
        emit
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%Ld,\"dur\":%Ld,\"pid\":2,\"tid\":1,\"args\":%s}"
             (json_escape sp.sp_name) (json_escape sp.sp_cat) s0 sdur
             (json_args sp.sp_args))
      | _ -> ())
    all;
  List.iter
    (fun (name, v) ->
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%Ld,\"pid\":1,\"tid\":1,\"args\":{\"value\":%Ld}}"
           (json_escape name) !last_ts v))
    (counters t);
  "[\n" ^ String.concat ",\n" (List.rev !events) ^ "\n]\n"

(* JSON fragment of the latency histograms: [{"name":...,"count":...,
   "p50_us":...,...}, ...]. Benches embed this in their JSON output so
   tail latency is machine-readable alongside throughput. *)
let histograms_json t =
  let hs = histograms t in
  "["
  ^ String.concat ","
      (List.map
         (fun (k, s) ->
           Printf.sprintf
             "{\"name\":\"%s\",\"count\":%d,\"sum_us\":%Ld,\"min_us\":%Ld,\"p50_us\":%Ld,\"p95_us\":%Ld,\"p99_us\":%Ld,\"max_us\":%Ld}"
             (json_escape k) s.count s.sum_us s.min_us s.p50_us s.p95_us
             s.p99_us s.max_us)
         hs)
  ^ "]"

(* Full machine-readable snapshot: counters, gauges and histograms as
   one JSON object — `dvmctl metrics --json` and the BENCH_*.json
   writer share this. *)
let metrics_json t =
  let b = Buffer.create 1024 in
  let kv (k, v) = Printf.sprintf "\"%s\":%Ld" (json_escape k) v in
  Buffer.add_string b "{\"counters\":{";
  Buffer.add_string b (String.concat "," (List.map kv (counters t)));
  Buffer.add_string b "},\"gauges\":{";
  Buffer.add_string b (String.concat "," (List.map kv (gauges t)));
  Buffer.add_string b "},\"histograms\":";
  Buffer.add_string b (histograms_json t);
  Buffer.add_string b "}";
  Buffer.contents b

(* --- Plain-text metrics snapshot. --- *)

let metrics_snapshot t =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "== telemetry snapshot ==\n";
  let cs = counters t in
  if cs <> [] then begin
    pf "counters:\n";
    List.iter (fun (k, v) -> pf "  %-44s %12Ld\n" k v) cs
  end;
  let gs = gauges t in
  if gs <> [] then begin
    pf "gauges:\n";
    List.iter (fun (k, v) -> pf "  %-44s %12Ld\n" k v) gs
  end;
  let hs = histograms t in
  if hs <> [] then begin
    pf "histograms (µs):\n";
    pf "  %-44s %8s %12s %8s %8s %8s %8s %8s\n" "" "count" "sum" "min" "p50"
      "p95" "p99" "max";
    List.iter
      (fun (k, s) ->
        pf "  %-44s %8d %12Ld %8Ld %8Ld %8Ld %8Ld %8Ld\n" k s.count s.sum_us
          s.min_us s.p50_us s.p95_us s.p99_us s.max_us)
      hs
  end;
  pf "spans: %d recorded%s\n" t.span_count
    (if t.dropped > 0 then Printf.sprintf " (%d dropped)" t.dropped else "");
  Buffer.contents b

(* --- Shortcuts over the global default registry — what hot-path
   instrumentation call sites use. Disabled cost: one call + one flag
   check. --- *)

module Global = struct
  let on () = default.enabled
  let incr name = incr default name
  let add name by = add default name by
  let set_gauge name v = set_gauge default name v
  let observe name v = observe default name v

  let with_span ?cat ?args ?observe_hist name f =
    with_span ?cat ?args ?observe_hist default name f
end

(* Sibling modules of the wrapped library, re-exported so users write
   Telemetry.Trace / Telemetry.Flight / Telemetry.Slo. *)
module Trace = Trace
module Flight = Flight
module Slo = Slo
