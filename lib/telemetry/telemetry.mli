(** System telemetry: spans, counters and log-scale latency histograms.

    A registry collects three kinds of signal:

    - {e spans} — nested timed regions keyed to both the wall clock and
      (when one is injected) the simulation's virtual clock;
    - {e counters} and {e gauges} — monotonic / last-value integers;
    - {e histograms} — log₂-bucketed latency distributions in µs.

    Registries are disabled by default; every operation on a disabled
    registry returns after a single flag check, so instrumentation can
    stay in hot paths permanently. Two exporters: Chrome
    [trace_event] JSON (one event per line, loads in Perfetto and
    chrome://tracing) and a plain-text metrics snapshot.

    Most call sites use {!Global}, the shortcuts over the process-wide
    {!default} registry. *)

type t

type clock = unit -> int64
(** Microseconds. *)

val create : ?max_spans:int -> unit -> t
(** A fresh, disabled registry. [max_spans] bounds span memory;
    completions past the cap are counted in {!dropped_spans}. *)

val default : t
(** The process-wide registry used by {!Global} and by the library
    instrumentation call sites. *)

val enabled : t -> bool
val enable : t -> unit
val disable : t -> unit

val reset : t -> unit
(** Drop all recorded data (keeps clocks and the enabled flag). *)

val set_wall_clock : t -> clock -> unit
val set_sim_clock : t -> clock option -> unit
(** Inject the simulation's virtual clock ([Simnet.Engine.run] does
    this for the duration of a run); [None] detaches it. *)

val sim_clock : t -> clock option

(** {1 Counters, gauges, histograms} *)

val incr : t -> string -> unit
val add : t -> string -> int64 -> unit
val set_gauge : t -> string -> int64 -> unit
val observe : t -> string -> int64 -> unit
(** Record one histogram observation (µs). *)

val counter_value : t -> string -> int64
val gauge_value : t -> string -> int64
val counters : t -> (string * int64) list
(** Sorted by name. *)

val gauges : t -> (string * int64) list

type hist_stats = {
  count : int;
  sum_us : int64;
  min_us : int64;
  max_us : int64;
  p50_us : int64;  (** approximate: bucket upper bound *)
  p95_us : int64;
  p99_us : int64;
}

val histogram_stats : t -> string -> hist_stats option
val histograms : t -> (string * hist_stats) list

(** {1 Spans} *)

type span = {
  sp_id : int;
  sp_name : string;
  sp_cat : string;  (** subsystem, e.g. "simnet", "pipeline", "cache" *)
  sp_depth : int;  (** nesting depth at entry; 0 = top level *)
  sp_wall_start : int64;
  sp_wall_end : int64;
  sp_sim_start : int64 option;
  sp_sim_end : int64 option;
  sp_args : (string * string) list;
}

val with_span :
  ?cat:string ->
  ?args:(string * string) list ->
  ?observe_hist:string ->
  t ->
  string ->
  (unit -> 'a) ->
  'a
(** Run the thunk inside a span; the span is recorded even if the
    thunk raises. [observe_hist] additionally records the duration
    into that histogram — the {e simulated} duration when a sim clock
    is attached (so bench histograms never mix virtual and host time),
    the wall duration otherwise. If a {!Trace} scope is ambient the
    span is also attached as a leaf of that distributed trace. On a
    disabled registry this is exactly [f ()]. *)

(** {1 Capture and replay}

    Memoization support: a [tape] is the recorded sequence of
    telemetry effects (counter adds, gauge sets, histogram
    observations, span brackets) a computation performed. Replaying
    the tape re-performs those effects against the registry's live
    state — fresh span ids and clock readings, the currently ambient
    {!Trace} scope — so a caller that cached the computation's result
    can skip the work while every aggregate a bench pins (counter and
    histogram values, span counts, trace leaves) comes out exactly as
    a real re-run would have produced. Counter/gauge/observation
    values are re-applied verbatim; under a simulation clock this is
    exact, because the captured computation was synchronous and both
    runs elapse zero virtual time. *)

type tape

val capture : t -> (unit -> 'a) -> 'a * tape option
(** Run the thunk while recording its telemetry effects. Returns
    [None] for the tape when a capture was already active (the outer
    capture owns the ops — the caller must not memoize). A disabled
    registry yields an empty tape, matching its zero effects; callers
    memoizing against it must check {!enabled} parity before
    replaying. *)

val replay : t -> tape -> unit
(** Re-perform a captured tape's effects. A no-op on a disabled
    registry. *)

val spans : t -> span list
(** In completion order (inner spans precede the spans that contain
    them). *)

val span_count : t -> int
val dropped_spans : t -> int

(** {1 Exporters} *)

val chrome_trace : t -> string
(** The whole registry as Chrome [trace_event] JSON: spans as complete
    ("X") events on pid 1 (wall clock) and pid 2 (simulated time),
    counters as trailing "C" samples. One event per line. *)

val metrics_snapshot : t -> string
(** Human-readable table of counters, gauges and histograms. *)

val histograms_json : t -> string
(** The latency histograms as a JSON array of
    [{"name", "count", "sum_us", "min_us", "p50_us", "p95_us",
    "p99_us", "max_us"}] objects — what benches embed in their JSON
    output. *)

val metrics_json : t -> string
(** Counters, gauges and histograms as one JSON object
    [{"counters":{...},"gauges":{...},"histograms":[...]}] — the
    machine-readable twin of {!metrics_snapshot}, shared by
    [dvmctl metrics --json] and the [BENCH_*.json] writer. *)

val json_escape : string -> string
(** Exposed for tests. *)

(** {1 Global shortcuts} over {!default} — the form instrumentation
    call sites use. *)
module Global : sig
  val on : unit -> bool
  val incr : string -> unit
  val add : string -> int64 -> unit
  val set_gauge : string -> int64 -> unit
  val observe : string -> int64 -> unit

  val with_span :
    ?cat:string ->
    ?args:(string * string) list ->
    ?observe_hist:string ->
    string ->
    (unit -> 'a) ->
    'a
end

(** {1 Distributed observability} — sibling modules re-exported. *)

module Trace : module type of Trace
module Flight : module type of Flight
module Slo : module type of Slo
