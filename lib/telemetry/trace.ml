(* Distributed request tracing.

   One trace per client request: the client session mints a root
   context, the context rides the wire as Trace-Id/Parent-Span-Id
   headers, and every hop (farm edge, shard node, pipeline leaf) opens
   a child span under the parent it decoded.  Decisions — sheds,
   breaker trips, hedges, failovers, coalesce joins, serve-stale — are
   attached as reason {e events} on the owning span, so a trace answers
   "why did this request end the way it did", not just "where did the
   time go".

   The collector is a process-wide flat store (spans + events tagged
   with a trace id); the tree structure lives in parent pointers.  All
   timestamps come from an injected clock — [Simnet.Engine.run] points
   it at virtual time — so exports are deterministic under a seeded
   simulation.  Disabled (the default), every operation is a flag
   check; a null context ([none]) likewise short-circuits, so call
   sites never branch. *)

type ctx = { tr : int64; sp : int }

let none = { tr = 0L; sp = 0 }

type srec = {
  s_trace : int64;
  s_id : int;
  s_parent : int;  (* 0 = root *)
  s_node : string;
  s_name : string;
  s_args : (string * string) list;
  s_start : int64;
  mutable s_end : int64;  (* -1 while open *)
}

type erec = {
  e_trace : int64;
  e_span : int;  (* owning span *)
  e_node : string;
  e_kind : string;
  e_detail : string;
  e_at : int64;
}

type span = srec option

(* Collector state. Sequential id minting keeps seeded runs
   reproducible; never use wall time or randomness here. *)
let enabled_flag = ref false
let null_clock () = 0L
let clock = ref null_clock
let max_records = ref 500_000
let spans_rev : srec list ref = ref []
let span_count_ = ref 0
let dropped_ = ref 0
let events_rev : erec list ref = ref []
let event_count_ = ref 0
let next_trace = ref 1L
let next_span = ref 1
let ambient : (ctx * string) option ref = ref None

let enabled () = !enabled_flag
let enable () = enabled_flag := true
let disable () = enabled_flag := false

let reset () =
  spans_rev := [];
  span_count_ := 0;
  dropped_ := 0;
  events_rev := [];
  event_count_ := 0;
  next_trace := 1L;
  next_span := 1;
  ambient := None;
  Flight.reset ()

let set_clock c = clock := c
let current_clock () = !clock
let set_max_records n = max_records := max 1 n
let live ctx = !enabled_flag && not (Int64.equal ctx.tr 0L)

let span_count () = !span_count_
let event_count () = !event_count_
let dropped () = !dropped_

let alloc ~trace ~parent ~node ~args ~start_us ~end_us name =
  if !span_count_ + !event_count_ >= !max_records then begin
    incr dropped_;
    None
  end
  else begin
    let id = !next_span in
    incr next_span;
    let r =
      {
        s_trace = trace;
        s_id = id;
        s_parent = parent;
        s_node = node;
        s_name = name;
        s_args = args;
        s_start = start_us;
        s_end = end_us;
      }
    in
    spans_rev := r :: !spans_rev;
    incr span_count_;
    Some r
  end

let root ?(args = []) ~node name =
  if not !enabled_flag then None
  else begin
    let tr = !next_trace in
    next_trace := Int64.add tr 1L;
    alloc ~trace:tr ~parent:0 ~node ~args ~start_us:(!clock ()) ~end_us:(-1L)
      name
  end

let start ?(args = []) ctx ~node name =
  if live ctx then
    alloc ~trace:ctx.tr ~parent:ctx.sp ~node ~args ~start_us:(!clock ())
      ~end_us:(-1L) name
  else None

let ctx_of = function
  | None -> none
  | Some r -> { tr = r.s_trace; sp = r.s_id }

let finish = function
  | None -> ()
  | Some r ->
    if Int64.equal r.s_end (-1L) then begin
      r.s_end <- !clock ();
      Flight.note ~at:r.s_end ~node:r.s_node
        (Printf.sprintf "span %s trace=%Lx dur=%Ldus" r.s_name r.s_trace
           (Int64.sub r.s_end r.s_start))
    end

let event ?(args = []) ctx ~node ~kind detail =
  ignore args;
  if live ctx then begin
    if !span_count_ + !event_count_ >= !max_records then incr dropped_
    else begin
      let at = !clock () in
      events_rev :=
        {
          e_trace = ctx.tr;
          e_span = ctx.sp;
          e_node = node;
          e_kind = kind;
          e_detail = detail;
          e_at = at;
        }
        :: !events_rev;
      incr event_count_;
      Flight.note ~at ~node
        (Printf.sprintf "event %s (%s) trace=%Lx" kind detail ctx.tr)
    end
  end

(* Ambient scope: lets instrumentation that has no explicit context
   parameter (Telemetry.with_span leaves inside the pipeline) attach to
   the request being processed. *)
let scope ctx ~node f =
  if live ctx then begin
    let prev = !ambient in
    ambient := Some (ctx, node);
    Fun.protect ~finally:(fun () -> ambient := prev) f
  end
  else f ()

let current () = !ambient

let leaf ?(args = []) ~name ~start_us ~end_us () =
  match !ambient with
  | Some (ctx, node) when live ctx ->
    ignore
      (alloc ~trace:ctx.tr ~parent:ctx.sp ~node ~args ~start_us ~end_us name)
  | _ -> ()

(* Wire helpers: what Httpwire carries. *)
let wire ctx = if live ctx then Some (ctx.tr, ctx.sp) else None

let of_wire ~trace_id ~parent_span =
  if not !enabled_flag then none
  else
    match trace_id with
    | None -> none
    | Some tr -> { tr; sp = Option.value ~default:0 parent_span }

(* Queries. *)
let spans () = List.rev !spans_rev
let events () = List.rev !events_rev
let spans_of tr = List.filter (fun s -> Int64.equal s.s_trace tr) (spans ())
let events_of tr = List.filter (fun e -> Int64.equal e.e_trace tr) (events ())

let trace_ids () =
  let tbl = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace tbl s.s_trace ()) !spans_rev;
  List.iter (fun e -> Hashtbl.replace tbl e.e_trace ()) !events_rev;
  List.sort Int64.compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

let find_trace_with ~kind =
  let rec go = function
    | [] -> None
    | e :: rest -> if e.e_kind = kind then Some e.e_trace else go rest
  in
  go (events ())

let event_kind_counts () =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let n = try Hashtbl.find tbl e.e_kind with Not_found -> 0 in
      Hashtbl.replace tbl e.e_kind (n + 1))
    !events_rev;
  List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [])

(* Exporters. *)
let esc = Flight.esc

let args_json args =
  let b = Buffer.create 32 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (esc k) (esc v)))
    args;
  Buffer.add_char b '}';
  Buffer.contents b

let export_json tr =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "{\"trace_id\":\"%016Lx\",\"spans\":[" tr);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n {\"id\":%d,\"parent\":%d,\"node\":\"%s\",\"name\":\"%s\",\"start_us\":%Ld,\"end_us\":%Ld,\"args\":%s}"
           s.s_id s.s_parent (esc s.s_node) (esc s.s_name) s.s_start s.s_end
           (args_json s.s_args)))
    (spans_of tr);
  Buffer.add_string b "],\"events\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n {\"span\":%d,\"node\":\"%s\",\"kind\":\"%s\",\"detail\":\"%s\",\"at_us\":%Ld}"
           e.e_span (esc e.e_node) (esc e.e_kind) (esc e.e_detail) e.e_at))
    (events_of tr);
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* Chrome trace_event export for one trace: one pid per node (sorted),
   spans as complete "X" events, reason events as instants. Open spans
   (a crashed hop) render with duration 1. *)
let export_chrome tr =
  let sps = spans_of tr and evs = events_of tr in
  let node_tbl = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace node_tbl s.s_node ()) sps;
  List.iter (fun e -> Hashtbl.replace node_tbl e.e_node ()) evs;
  let nodes =
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) node_tbl [])
  in
  let pid_of n =
    let rec idx i = function
      | [] -> 0
      | x :: rest -> if x = n then i else idx (i + 1) rest
    in
    1 + idx 0 nodes
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b "[\n";
  let first = ref true in
  let emit line =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b line
  in
  List.iter
    (fun n ->
      emit
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":1,\"args\":{\"name\":\"%s\"}}"
           (pid_of n) (esc n)))
    nodes;
  List.iter
    (fun s ->
      let dur =
        if Int64.equal s.s_end (-1L) then 1L
        else Int64.max 1L (Int64.sub s.s_end s.s_start)
      in
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"trace\",\"ph\":\"X\",\"pid\":%d,\"tid\":1,\"ts\":%Ld,\"dur\":%Ld,\"args\":%s}"
           (esc s.s_name) (pid_of s.s_node) s.s_start dur (args_json s.s_args)))
    sps;
  List.iter
    (fun e ->
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"reason\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":1,\"ts\":%Ld,\"args\":{\"detail\":\"%s\"}}"
           (esc e.e_kind) (pid_of e.e_node) e.e_at (esc e.e_detail)))
    evs;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

(* Human-readable tree for one trace: spans indented under their
   parents, reason events flagged with '!' under the owning span. *)
let render tr =
  let sps = spans_of tr and evs = events_of tr in
  let ids = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace ids s.s_id ()) sps;
  let children = Hashtbl.create 16 in
  let roots = ref [] in
  List.iter
    (fun s ->
      if s.s_parent <> 0 && Hashtbl.mem ids s.s_parent then
        Hashtbl.replace children s.s_parent
          (s :: (try Hashtbl.find children s.s_parent with Not_found -> []))
      else roots := s :: !roots)
    (List.rev sps);
  let evs_of id = List.filter (fun e -> e.e_span = id) evs in
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "trace %016Lx\n" tr);
  let rec walk indent s =
    let dur =
      if Int64.equal s.s_end (-1L) then "open"
      else Printf.sprintf "%Ldus" (Int64.sub s.s_end s.s_start)
    in
    let args =
      match s.s_args with
      | [] -> ""
      | l ->
        " ("
        ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) l)
        ^ ")"
    in
    Buffer.add_string b
      (Printf.sprintf "%s[%s] %s @%Ldus %s%s\n" indent s.s_node s.s_name
         s.s_start dur args);
    List.iter
      (fun e ->
        Buffer.add_string b
          (Printf.sprintf "%s  ! %s: %s @%Ldus\n" indent e.e_kind e.e_detail
             e.e_at))
      (evs_of s.s_id);
    List.iter (walk (indent ^ "  "))
      (try Hashtbl.find children s.s_id with Not_found -> [])
  in
  List.iter (walk "  ") !roots;
  (* Events whose owning span lives on another (never-received) hop. *)
  List.iter
    (fun e ->
      if not (Hashtbl.mem ids e.e_span) then
        Buffer.add_string b
          (Printf.sprintf "  ! %s: %s @%Ldus (span %d)\n" e.e_kind e.e_detail
             e.e_at e.e_span))
    evs;
  Buffer.contents b
