(** Distributed request tracing.

    A {e trace} is one client request's causal span tree across
    simulated hosts: the client session mints a root context, the
    context crosses the wire as [Trace-Id]/[Parent-Span-Id] headers,
    and each hop opens child spans under the parent it decoded.
    Decision points attach structured {e reason events} (admission
    sheds, breaker trips, hedges, failovers, coalesce joins,
    serve-stale) to the owning span.

    The collector is process-global and disabled by default; a null
    context short-circuits every operation, so instrumentation stays in
    hot paths.  Timestamps come from an injected clock —
    [Simnet.Engine.run] points it at virtual time for the duration of a
    run — and ids are minted sequentially, so seeded runs export
    byte-identical traces. *)

type ctx
(** A (trace id, parent span id) pair; the propagation token. *)

val none : ctx
(** The null context: operations on it are no-ops. *)

val live : ctx -> bool
(** Tracing enabled and [ctx] is not {!none}. *)

type span
(** Handle for an open span; [finish] closes it (idempotent). *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop all spans/events, restart id minting, clear the flight
    recorder. Keeps the enabled flag and clock. *)

val set_clock : (unit -> int64) -> unit
val current_clock : unit -> unit -> int64
val set_max_records : int -> unit

(** {1 Producing} *)

val root : ?args:(string * string) list -> node:string -> string -> span
(** Mint a fresh trace with this span as root (no-op span when
    disabled). *)

val start : ?args:(string * string) list -> ctx -> node:string -> string -> span
(** Open a child span under [ctx] (no-op when [ctx] is dead). *)

val ctx_of : span -> ctx
val finish : span -> unit

val event :
  ?args:(string * string) list -> ctx -> node:string -> kind:string -> string -> unit
(** Attach a reason event — [kind] is the stable machine name (e.g.
    ["admission.shed_deadline"]), the string argument free-form
    detail. *)

val scope : ctx -> node:string -> (unit -> 'a) -> 'a
(** Run a thunk with [ctx] as the ambient trace scope, so
    context-free instrumentation ({!leaf}) can attach to it. *)

val current : unit -> (ctx * string) option

val leaf :
  ?args:(string * string) list ->
  name:string -> start_us:int64 -> end_us:int64 -> unit -> unit
(** Attach an already-timed span (a [Telemetry.with_span] completion)
    as a closed leaf under the ambient scope, if any. *)

(** {1 Wire} *)

val wire : ctx -> (int64 * int) option
(** What to put in the request headers; [None] when the ctx is dead. *)

val of_wire : trace_id:int64 option -> parent_span:int option -> ctx
(** Rebuild a context from decoded headers; absent headers (an old
    peer) yield {!none}. *)

(** {1 Inspecting} *)

type srec = {
  s_trace : int64;
  s_id : int;
  s_parent : int;  (** 0 = root *)
  s_node : string;
  s_name : string;
  s_args : (string * string) list;
  s_start : int64;
  mutable s_end : int64;  (** -1 while open *)
}

type erec = {
  e_trace : int64;
  e_span : int;
  e_node : string;
  e_kind : string;
  e_detail : string;
  e_at : int64;
}

val spans : unit -> srec list
val events : unit -> erec list
val spans_of : int64 -> srec list
val events_of : int64 -> erec list
val trace_ids : unit -> int64 list
val find_trace_with : kind:string -> int64 option
(** First trace (by event order) containing a reason event of [kind]. *)

val event_kind_counts : unit -> (string * int) list
(** Sorted (kind, occurrences) — what the completeness tests compare
    against telemetry counters. *)

val span_count : unit -> int
val event_count : unit -> int
val dropped : unit -> int

(** {1 Exporting} *)

val export_json : int64 -> string
(** One trace as JSON: flat span and event arrays, tree via parent
    ids. *)

val export_chrome : int64 -> string
(** One trace as Chrome [trace_event] JSON: one pid per node, spans as
    "X" events, reason events as instants. *)

val render : int64 -> string
(** Human-readable indented tree, reason events flagged with '!'. *)
