(* Verification phase 3: dataflow type inference over each method body.

   A worklist abstract interpretation computes, for every instruction,
   the verification types of locals and operand stack on entry. Checks
   that cannot be decided against the oracle's knowledge of the
   environment are recorded as assumptions (deferred to the client)
   rather than errors — the static/dynamic partitioning of §3.1.

   Subroutines (jsr/ret) use the classic merged-frame approximation: a
   return address carries its subroutine entry, and ret flows to the
   instruction after every jsr targeting that entry. *)

module CF = Bytecode.Classfile
module CP = Bytecode.Cp
module I = Bytecode.Instr
module D = Bytecode.Descriptor
module V = Vtype

type frame = { locals : V.t array; stack : V.t list }

type result = {
  r_errors : Verror.t list;
  r_checks : int; (* static checks performed *)
}

exception Fail of string

let failv fmt = Format.kasprintf (fun s -> raise (Fail s)) fmt

(* Frames merge on every edge of every worklist step, and at a
   fixpoint almost every merge leaves the stored frame unchanged — so
   merging is copy-on-write: the stored locals array is duplicated only
   when some slot actually widens, and the stored stack list is reused
   when no stack slot changes. Merge order (locals first, then stack,
   both left to right) matches the old Array.map2/List.map2 pass. *)

let throwable = "java/lang/Throwable"

type ctx = {
  oracle : Oracle.t;
  asms : Assumptions.t;
  scope : Assumptions.scope;
  this_class : string;
  super_class : string option;
  pool : CP.t;
  mutable checks : int;
}

let tick ctx = ctx.checks <- ctx.checks + 1

let assignable_desc ctx v ty =
  tick ctx;
  V.assignable_to_desc ctx.oracle ctx.asms ~scope:ctx.scope v ty

let assignable_class ctx v ~target =
  tick ctx;
  V.assignable_to_class ctx.oracle ctx.asms ~scope:ctx.scope v ~target

(* Member resolution against the oracle, turning `Unknown into an
   assumption and `Absent into a hard error. *)
let resolve_field ctx ~cls ~name ~desc ~want_static =
  tick ctx;
  match Oracle.lookup_field ctx.oracle cls name with
  | `Found (declaring, d, s, private_) ->
    if not (String.equal d desc) then
      failv "field %s.%s has type %s, expected %s" cls name d desc;
    if s <> want_static then failv "field %s.%s static mismatch" cls name;
    if private_ && not (String.equal declaring ctx.this_class) then
      failv "access to private field %s.%s from %s" declaring name
        ctx.this_class
  | `Absent -> failv "no field %s in class %s" name cls
  | `Unknown ->
    Assumptions.add ctx.asms ~scope:ctx.scope
      (Assumptions.Field_exists { cls; name; desc; static = want_static })

let resolve_method_ref ctx ~cls ~name ~desc ~want_static =
  tick ctx;
  match Oracle.lookup_method ctx.oracle cls name desc with
  | `Found (declaring, s, private_) ->
    if s <> want_static then failv "method %s.%s static mismatch" cls name;
    if
      private_
      && not (String.equal declaring ctx.this_class)
      && not (String.equal name "<init>")
    then
      failv "call to private method %s.%s from %s" declaring name
        ctx.this_class
  | `Absent -> failv "no method %s:%s in class %s" name desc cls
  | `Unknown ->
    Assumptions.add ctx.asms ~scope:ctx.scope
      (Assumptions.Method_exists { cls; name; desc; static = want_static })

let is_array_name n = String.length n > 0 && n.[0] = '['

let entry_frame ctx (m : CF.meth) (code : CF.code) =
  let sg = D.method_sig_of_string m.CF.m_desc in
  let locals = Array.make code.CF.max_locals V.Top in
  let is_static = CF.has_flag m.CF.m_flags CF.Static in
  let base =
    if is_static then 0
    else begin
      locals.(0) <-
        (if
           String.equal m.CF.m_name "<init>"
           && not (String.equal ctx.this_class CF.java_lang_object)
         then V.Uninit_this ctx.this_class
         else V.Ref ctx.this_class);
      1
    end
  in
  List.iteri (fun i ty -> locals.(base + i) <- V.of_desc_ty ty) sg.D.params;
  { locals; stack = [] }

(* Simulate one instruction on a mutable working frame. Returns the
   list of successor indices (exception edges handled by caller). *)
let step ctx ~method_sig (code : CF.code) ~jsr_sites idx frame =
  let max_stack = code.CF.max_stack in
  let locals = frame.locals in
  let stack = ref frame.stack in
  (* Depth tracked incrementally: the overflow check was O(depth) per
     push via List.length. *)
  let depth = ref (List.length frame.stack) in
  let push v =
    if !depth >= max_stack then failv "operand stack overflow";
    incr depth;
    stack := v :: !stack
  in
  let pop () =
    match !stack with
    | [] -> failv "operand stack underflow"
    | v :: rest ->
      decr depth;
      stack := rest;
      v
  in
  let pop_int () =
    match pop () with
    | V.VInt -> ()
    | v -> failv "expected int on stack, found %s" (V.to_string v)
  in
  let pop_ref () =
    let v = pop () in
    if V.is_reference v then v
    else failv "expected reference on stack, found %s" (V.to_string v)
  in
  let local n =
    if n < 0 || n >= Array.length locals then failv "local %d out of range" n
    else locals.(n)
  in
  let set_local n v =
    if n < 0 || n >= Array.length locals then failv "local %d out of range" n
    else locals.(n) <- v
  in
  let fieldref k = CP.get_fieldref ctx.pool k in
  let methodref k = CP.get_methodref ctx.pool k in
  let class_at k = CP.get_class_name ctx.pool k in
  let sig_of desc = D.method_sig_of_string desc in
  let pop_args sg =
    (* last parameter is on top: check in reverse *)
    List.iter
      (fun ty ->
        let v = pop () in
        if not (assignable_desc ctx v ty) then
          failv "argument of type %s where %s expected" (V.to_string v)
            (D.ty_to_string ty))
      (List.rev sg.D.params)
  in
  let push_ret sg =
    match sg.D.ret with None -> () | Some ty -> push (V.of_desc_ty ty)
  in
  let insn = code.CF.instrs.(idx) in
  tick ctx;
  let fall = [ idx + 1 ] in
  let succs =
    match insn with
    | I.Nop -> fall
    | I.Iconst _ ->
      push V.VInt;
      fall
    | I.Ldc_str _ ->
      push (V.Ref "java/lang/String");
      fall
    | I.Aconst_null ->
      push V.Null;
      fall
    | I.Iload n ->
      (match local n with
      | V.VInt -> push V.VInt
      | v -> failv "iload of %s" (V.to_string v));
      fall
    | I.Istore n ->
      pop_int ();
      set_local n V.VInt;
      fall
    | I.Aload n ->
      (match local n with
      | (V.Null | V.Ref _ | V.Uninit _ | V.Uninit_this _) as v -> push v
      | v -> failv "aload of %s" (V.to_string v));
      fall
    | I.Astore n ->
      (match pop () with
      | (V.Null | V.Ref _ | V.Uninit _ | V.Uninit_this _ | V.Retaddr _) as v
        ->
        set_local n v
      | v -> failv "astore of %s" (V.to_string v));
      fall
    | I.Iinc (n, _) ->
      (match local n with
      | V.VInt -> ()
      | v -> failv "iinc of %s" (V.to_string v));
      fall
    | I.Iadd | I.Isub | I.Imul | I.Idiv | I.Irem | I.Ishl | I.Ishr | I.Iand
    | I.Ior | I.Ixor ->
      pop_int ();
      pop_int ();
      push V.VInt;
      fall
    | I.Ineg ->
      pop_int ();
      push V.VInt;
      fall
    | I.Dup ->
      let v = pop () in
      push v;
      push v;
      fall
    | I.Dup_x1 ->
      let a = pop () in
      let b = pop () in
      push a;
      push b;
      push a;
      fall
    | I.Pop ->
      ignore (pop ());
      fall
    | I.Swap ->
      let a = pop () in
      let b = pop () in
      push a;
      push b;
      fall
    | I.Goto t -> [ t ]
    | I.If_icmp (_, t) ->
      pop_int ();
      pop_int ();
      t :: fall
    | I.If_z (_, t) ->
      pop_int ();
      t :: fall
    | I.If_acmp (_, t) ->
      ignore (pop_ref ());
      ignore (pop_ref ());
      t :: fall
    | I.If_null (_, t) ->
      ignore (pop_ref ());
      t :: fall
    | I.Jsr t ->
      push (V.Retaddr t);
      [ t ]
    | I.Ret n -> (
      match local n with
      | V.Retaddr entry -> (
        match Hashtbl.find_opt jsr_sites entry with
        | Some sites -> List.map (fun s -> s + 1) sites
        | None -> failv "ret from subroutine %d with no jsr sites" entry)
      | v -> failv "ret via local holding %s" (V.to_string v))
    | I.Tableswitch { targets; default; _ } ->
      pop_int ();
      default :: Array.to_list targets
    | I.Ireturn ->
      (match method_sig.D.ret with
      | Some D.Int -> ()
      | Some ty -> failv "ireturn from method returning %s" (D.ty_to_string ty)
      | None -> failv "ireturn from void method");
      pop_int ();
      []
    | I.Areturn ->
      (match method_sig.D.ret with
      | Some (D.Obj _ | D.Arr _) ->
        let v = pop_ref () in
        let ty = Option.get method_sig.D.ret in
        if not (assignable_desc ctx v ty) then
          failv "areturn of %s from method returning %s" (V.to_string v)
            (D.ty_to_string ty)
      | Some D.Int -> failv "areturn from int method"
      | None -> failv "areturn from void method");
      []
    | I.Return ->
      (match method_sig.D.ret with
      | None -> ()
      | Some _ -> failv "return from non-void method");
      []
    | I.Getstatic k ->
      let fr = fieldref k in
      resolve_field ctx ~cls:fr.CP.ref_class ~name:fr.CP.ref_name
        ~desc:fr.CP.ref_desc ~want_static:true;
      push (V.of_desc_string fr.CP.ref_desc);
      fall
    | I.Putstatic k ->
      let fr = fieldref k in
      resolve_field ctx ~cls:fr.CP.ref_class ~name:fr.CP.ref_name
        ~desc:fr.CP.ref_desc ~want_static:true;
      let v = pop () in
      if not (assignable_desc ctx v (D.ty_of_string fr.CP.ref_desc)) then
        failv "putstatic of %s into %s" (V.to_string v) fr.CP.ref_desc;
      fall
    | I.Getfield k ->
      let fr = fieldref k in
      resolve_field ctx ~cls:fr.CP.ref_class ~name:fr.CP.ref_name
        ~desc:fr.CP.ref_desc ~want_static:false;
      let recv = pop () in
      if not (assignable_class ctx recv ~target:fr.CP.ref_class) then
        failv "getfield on %s, expected %s" (V.to_string recv) fr.CP.ref_class;
      push (V.of_desc_string fr.CP.ref_desc);
      fall
    | I.Putfield k ->
      let fr = fieldref k in
      resolve_field ctx ~cls:fr.CP.ref_class ~name:fr.CP.ref_name
        ~desc:fr.CP.ref_desc ~want_static:false;
      let v = pop () in
      if not (assignable_desc ctx v (D.ty_of_string fr.CP.ref_desc)) then
        failv "putfield of %s into %s" (V.to_string v) fr.CP.ref_desc;
      let recv = pop () in
      (* An uninitialized this may set fields of its own class (the
         standard constructor-initialization allowance). *)
      (match recv with
      | V.Uninit_this c when String.equal c fr.CP.ref_class -> ()
      | recv ->
        if not (assignable_class ctx recv ~target:fr.CP.ref_class) then
          failv "putfield on %s, expected %s" (V.to_string recv)
            fr.CP.ref_class);
      fall
    | I.Invokevirtual k | I.Invokeinterface k ->
      let mr = methodref k in
      if String.equal mr.CP.ref_name "<init>" then
        failv "invokevirtual of constructor";
      resolve_method_ref ctx ~cls:mr.CP.ref_class ~name:mr.CP.ref_name
        ~desc:mr.CP.ref_desc ~want_static:false;
      let sg = sig_of mr.CP.ref_desc in
      pop_args sg;
      let recv = pop () in
      if not (assignable_class ctx recv ~target:mr.CP.ref_class) then
        failv "receiver %s for %s.%s" (V.to_string recv) mr.CP.ref_class
          mr.CP.ref_name;
      push_ret sg;
      fall
    | I.Invokestatic k ->
      let mr = methodref k in
      if String.equal mr.CP.ref_name "<init>" then
        failv "invokestatic of constructor";
      resolve_method_ref ctx ~cls:mr.CP.ref_class ~name:mr.CP.ref_name
        ~desc:mr.CP.ref_desc ~want_static:true;
      let sg = sig_of mr.CP.ref_desc in
      pop_args sg;
      push_ret sg;
      fall
    | I.Invokespecial k ->
      let mr = methodref k in
      let sg = sig_of mr.CP.ref_desc in
      if String.equal mr.CP.ref_name "<init>" then begin
        if sg.D.ret <> None then failv "constructor with non-void descriptor";
        resolve_method_ref ctx ~cls:mr.CP.ref_class ~name:"<init>"
          ~desc:mr.CP.ref_desc ~want_static:false;
        pop_args sg;
        let recv = pop () in
        let init_to =
          match recv with
          | V.Uninit { cls; _ } ->
            tick ctx;
            if not (String.equal cls mr.CP.ref_class) then
              failv "constructor of %s called on uninitialized %s"
                mr.CP.ref_class cls;
            V.Ref cls
          | V.Uninit_this cls ->
            tick ctx;
            let ok =
              String.equal mr.CP.ref_class cls
              ||
              match ctx.super_class with
              | Some s -> String.equal mr.CP.ref_class s
              | None -> false
            in
            if not ok then
              failv "uninitialized this of %s initialized via %s" cls
                mr.CP.ref_class;
            V.Ref cls
          | v -> failv "constructor called on %s" (V.to_string v)
        in
        (* Initialization substitutes the freshly initialized type for
           every alias of the uninitialized value. *)
        let subst v = if V.equal v recv then init_to else v in
        Array.iteri (fun i v -> locals.(i) <- subst v) locals;
        stack := List.map subst !stack
      end
      else begin
        resolve_method_ref ctx ~cls:mr.CP.ref_class ~name:mr.CP.ref_name
          ~desc:mr.CP.ref_desc ~want_static:false;
        pop_args sg;
        let recv = pop () in
        if not (assignable_class ctx recv ~target:mr.CP.ref_class) then
          failv "receiver %s for special %s.%s" (V.to_string recv)
            mr.CP.ref_class mr.CP.ref_name;
        push_ret sg
      end;
      fall
    | I.New k ->
      let cls = class_at k in
      tick ctx;
      if ctx.oracle cls = None then
        Assumptions.add ctx.asms ~scope:ctx.scope (Assumptions.Class_exists cls);
      (* Kill stale aliases of a previous allocation at this pc. *)
      let kill v =
        match v with V.Uninit { pc; _ } when pc = idx -> V.Top | v -> v
      in
      Array.iteri (fun i v -> locals.(i) <- kill v) locals;
      stack := List.map kill !stack;
      push (V.Uninit { pc = idx; cls });
      fall
    | I.Newarray ->
      pop_int ();
      push (V.Ref "[I");
      fall
    | I.Anewarray k ->
      let elem = class_at k in
      pop_int ();
      push (V.Ref ("[L" ^ elem ^ ";"));
      fall
    | I.Arraylength ->
      (match pop_ref () with
      | V.Null -> ()
      | V.Ref n when is_array_name n -> ()
      | v -> failv "arraylength of %s" (V.to_string v));
      push V.VInt;
      fall
    | I.Iaload ->
      pop_int ();
      (match pop_ref () with
      | V.Null | V.Ref "[I" -> ()
      | v -> failv "iaload from %s" (V.to_string v));
      push V.VInt;
      fall
    | I.Iastore ->
      pop_int ();
      pop_int ();
      (match pop_ref () with
      | V.Null | V.Ref "[I" -> ()
      | v -> failv "iastore into %s" (V.to_string v));
      fall
    | I.Aaload ->
      pop_int ();
      (match pop_ref () with
      | V.Null -> push V.Null
      | V.Ref n when is_array_name n && not (String.equal n "[I") -> (
        match Oracle.elem_of n with
        | Some e -> push (V.Ref e)
        | None -> failv "aaload from %s" n)
      | v -> failv "aaload from %s" (V.to_string v));
      fall
    | I.Aastore ->
      let v = pop_ref () in
      pop_int ();
      (match pop_ref () with
      | V.Null -> ()
      | V.Ref n when is_array_name n && not (String.equal n "[I") -> (
        match Oracle.elem_of n with
        | Some e ->
          if not (assignable_class ctx v ~target:e) then
            failv "aastore of %s into %s" (V.to_string v) n
        | None -> failv "aastore into %s" n)
      | arr -> failv "aastore into %s" (V.to_string arr));
      fall
    | I.Athrow ->
      let v = pop_ref () in
      if not (assignable_class ctx v ~target:throwable) then
        failv "athrow of non-throwable %s" (V.to_string v);
      []
    | I.Checkcast k ->
      let target = class_at k in
      ignore (pop_ref ());
      if ctx.oracle target = None && not (is_array_name target) then
        Assumptions.add ctx.asms ~scope:ctx.scope
          (Assumptions.Class_exists target);
      push (V.Ref target);
      fall
    | I.Instanceof k ->
      let target = class_at k in
      ignore (pop_ref ());
      if ctx.oracle target = None && not (is_array_name target) then
        Assumptions.add ctx.asms ~scope:ctx.scope
          (Assumptions.Class_exists target);
      push V.VInt;
      fall
    | I.Monitorenter | I.Monitorexit ->
      ignore (pop_ref ());
      fall
  in
  ({ locals; stack = !stack }, succs)

let verify_method oracle asms (cf : CF.t) (m : CF.meth) : result =
  match m.CF.m_code with
  | None -> { r_errors = []; r_checks = 0 }
  | Some code -> (
    let meth_key = m.CF.m_name ^ m.CF.m_desc in
    let ctx =
      {
        oracle;
        asms;
        scope = Assumptions.In_method meth_key;
        this_class = cf.CF.name;
        super_class = cf.CF.super;
        pool = cf.CF.pool;
        checks = 0;
      }
    in
    let n = Array.length code.CF.instrs in
    let jsr_sites = Hashtbl.create 4 in
    Array.iteri
      (fun i insn ->
        match insn with
        | I.Jsr t ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt jsr_sites t) in
          Hashtbl.replace jsr_sites t (i :: cur)
        | _ -> ())
      code.CF.instrs;
    let frames : frame option array = Array.make n None in
    let queue = Queue.create () in
    (* [locals]/[stack] are NOT retained as-is: the first-visit branch
       copies the array, and the merge branch writes into (a copy of)
       the stored frame — so callers may pass a working array shared
       between successors. *)
    let merge_into idx locals stack =
      if idx < 0 || idx >= n then failv "flow to out-of-range index %d" idx;
      match frames.(idx) with
      | None ->
        frames.(idx) <- Some { locals = Array.copy locals; stack };
        Queue.add idx queue
      | Some old ->
        if List.length old.stack <> List.length stack then
          failv "stack height mismatch at merge (%d vs %d)"
            (List.length old.stack) (List.length stack);
        let merged_locals = ref old.locals in
        let locals_changed = ref false in
        Array.iteri
          (fun i ov ->
            let m = V.merge ctx.oracle ov locals.(i) in
            if not (V.equal m ov) then begin
              if not !locals_changed then begin
                merged_locals := Array.copy old.locals;
                locals_changed := true
              end;
              !merged_locals.(i) <- m
            end)
          old.locals;
        let merged_stack = List.map2 (V.merge ctx.oracle) old.stack stack in
        let stack_changed = not (List.for_all2 V.equal merged_stack old.stack) in
        if !locals_changed || stack_changed then begin
          frames.(idx) <-
            Some
              {
                locals = !merged_locals;
                stack = (if stack_changed then merged_stack else old.stack);
              };
          Queue.add idx queue
        end
    in
    let handler_edges idx entry_locals =
      List.iter
        (fun h ->
          if idx >= h.CF.h_start && idx < h.CF.h_end then begin
            let catch = Option.value ~default:throwable h.CF.h_catch in
            (if ctx.oracle catch = None then
               Assumptions.add ctx.asms ~scope:ctx.scope
                 (Assumptions.Class_exists catch));
            tick ctx;
            merge_into h.CF.h_target entry_locals [ V.Ref catch ]
          end)
        code.CF.handlers
    in
    try
      (* Parsed once per method, not once per worklist step; inside the
         try so a bad descriptor still reports as a verification error
         exactly as before (entry_frame parsed it first anyway). *)
      let method_sig = D.method_sig_of_string m.CF.m_desc in
      let entry = entry_frame ctx m code in
      merge_into 0 entry.locals entry.stack;
      let rounds = ref 0 in
      while not (Queue.is_empty queue) do
        incr rounds;
        if !rounds > 200_000 then failv "verification did not converge";
        let idx = Queue.take queue in
        match frames.(idx) with
        | None -> ()
        | Some fr ->
          (* Exception edges use the state on entry: the handler sees
             locals as they were when the covered instruction began. *)
          handler_edges idx fr.locals;
          let work = { locals = Array.copy fr.locals; stack = fr.stack } in
          let out, succs = step ctx ~method_sig code ~jsr_sites idx work in
          List.iter (fun s -> merge_into s out.locals out.stack) succs
      done;
      { r_errors = []; r_checks = ctx.checks }
    with
    | Fail msg ->
      {
        r_errors = [ Verror.make ~cls:cf.CF.name ~meth:meth_key msg ];
        r_checks = ctx.checks;
      }
    | CP.Invalid_index i ->
      {
        r_errors =
          [
            Verror.make ~cls:cf.CF.name ~meth:meth_key
              (Printf.sprintf "invalid constant-pool index %d" i);
          ];
        r_checks = ctx.checks;
      }
    | CP.Wrong_kind { index; expected } ->
      {
        r_errors =
          [
            Verror.make ~cls:cf.CF.name ~meth:meth_key
              (Printf.sprintf "constant-pool entry %d is not a %s" index
                 expected);
          ];
        r_checks = ctx.checks;
      }
    | D.Bad_descriptor d ->
      {
        r_errors =
          [
            Verror.make ~cls:cf.CF.name ~meth:meth_key
              (Printf.sprintf "bad descriptor: %s" d);
          ];
        r_checks = ctx.checks;
      })

let verify_class oracle asms (cf : CF.t) =
  List.fold_left
    (fun (errs, checks) m ->
      let r = verify_method oracle asms cf m in
      (errs @ r.r_errors, checks + r.r_checks))
    ([], 0) cf.CF.methods
