(* The dynamic component of the distributed verification service: a
   small runtime class (dvm/RTVerifier) whose natives perform the
   deferred link-phase checks — a descriptor lookup and a string
   comparison against the client's class registry, exactly the
   functionality §3.1 leaves on the client. Distributed to clients on
   demand and installed into their VM. *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile

let class_name = "dvm/RTVerifier"

let desc_check_class = "(Ljava/lang/String;)V"
let desc_check_subclass = "(Ljava/lang/String;Ljava/lang/String;)V"

let desc_check_member =
  "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;I)V"

let runtime_class () =
  let st = [ CF.Public; CF.Static; CF.Native ] in
  B.class_ class_name
    [
      B.native_meth ~flags:st "checkClass" desc_check_class;
      B.native_meth ~flags:st "checkSubclass" desc_check_subclass;
      B.native_meth ~flags:st "checkField" desc_check_member;
      B.native_meth ~flags:st "checkMethod" desc_check_member;
    ]

type stats = {
  mutable dynamic_checks : int;
  mutable failures : int;
}

let verify_error vm stats fmt =
  Format.kasprintf
    (fun msg ->
      stats.failures <- stats.failures + 1;
      Jvm.Vmstate.throw vm ~cls:Jvm.Vmstate.c_verify ~message:msg)
    fmt

let str _vm n args =
  match List.nth_opt args n with
  | Some (Jvm.Value.Str s) -> s
  | Some v ->
    Jvm.Vmstate.fault "RTVerifier: expected string, got %s"
      (Jvm.Value.to_string v)
  | None -> Jvm.Vmstate.fault "RTVerifier: missing argument %d" n

let int_arg n args =
  match List.nth_opt args n with
  | Some (Jvm.Value.Int v) -> Int32.to_int v
  | Some _ | None -> Jvm.Vmstate.fault "RTVerifier: expected int arg %d" n

(* Each check costs a registry lookup plus string compares: cheap, per
   the paper ("limited to a descriptor lookup and string
   comparison"). *)
let check_cost = 2L

let lookup_class vm stats name =
  match Jvm.Classreg.lookup vm.Jvm.Vmstate.reg name with
  | l -> l
  | exception Jvm.Classreg.Class_not_found c ->
    verify_error vm stats "link check: class %s not found" c
  | exception Jvm.Classreg.Load_rejected { cls; reason } ->
    verify_error vm stats "link check: class %s rejected (%s)" cls reason

let install vm =
  let stats = { dynamic_checks = 0; failures = 0 } in
  Jvm.Classreg.register vm.Jvm.Vmstate.reg (runtime_class ());
  (match Jvm.Classreg.find_loaded vm.Jvm.Vmstate.reg class_name with
  | Some l -> l.Jvm.Classreg.init_state <- Jvm.Classreg.Initialized
  | None -> assert false);
  let reg = Jvm.Vmstate.register_native vm in
  reg ~cls:class_name ~name:"checkClass" ~desc:desc_check_class
    (fun vm args ->
      stats.dynamic_checks <- stats.dynamic_checks + 1;
      Telemetry.Global.incr "jvm.verifier.dynamic_checks";
      Jvm.Vmstate.add_cost vm check_cost;
      ignore (lookup_class vm stats (str vm 0 args));
      None);
  reg ~cls:class_name ~name:"checkSubclass" ~desc:desc_check_subclass
    (fun vm args ->
      stats.dynamic_checks <- stats.dynamic_checks + 1;
      Telemetry.Global.incr "jvm.verifier.dynamic_checks";
      Jvm.Vmstate.add_cost vm check_cost;
      let sub = str vm 0 args and super = str vm 1 args in
      ignore (lookup_class vm stats sub);
      if not (Jvm.Classreg.is_subclass vm.Jvm.Vmstate.reg ~sub ~super) then
        verify_error vm stats "link check: %s is not a subclass of %s" sub
          super;
      None);
  reg ~cls:class_name ~name:"checkField" ~desc:desc_check_member
    (fun vm args ->
      stats.dynamic_checks <- stats.dynamic_checks + 1;
      Telemetry.Global.incr "jvm.verifier.dynamic_checks";
      Jvm.Vmstate.add_cost vm check_cost;
      let cls = str vm 0 args
      and name = str vm 1 args
      and desc = str vm 2 args
      and want_static = int_arg 3 args <> 0 in
      ignore (lookup_class vm stats cls);
      (match Jvm.Classreg.resolve_field vm.Jvm.Vmstate.reg cls name with
      | None -> verify_error vm stats "link check: no field %s.%s" cls name
      | Some (_, f) ->
        if not (String.equal f.CF.f_desc desc) then
          verify_error vm stats
            "link check: field %s.%s has type %s, expected %s" cls name
            f.CF.f_desc desc;
        if CF.has_flag f.CF.f_flags CF.Static <> want_static then
          verify_error vm stats "link check: field %s.%s static mismatch" cls
            name);
      None);
  reg ~cls:class_name ~name:"checkMethod" ~desc:desc_check_member
    (fun vm args ->
      stats.dynamic_checks <- stats.dynamic_checks + 1;
      Telemetry.Global.incr "jvm.verifier.dynamic_checks";
      Jvm.Vmstate.add_cost vm check_cost;
      let cls = str vm 0 args
      and name = str vm 1 args
      and desc = str vm 2 args
      and want_static = int_arg 3 args <> 0 in
      ignore (lookup_class vm stats cls);
      (match Jvm.Classreg.resolve_method vm.Jvm.Vmstate.reg cls name desc with
      | None ->
        verify_error vm stats "link check: no method %s.%s:%s" cls name desc
      | Some (_, m) ->
        if CF.has_flag m.CF.m_flags CF.Static <> want_static then
          verify_error vm stats "link check: method %s.%s static mismatch" cls
            name);
      None);
  stats
