(* The static verification service (§3.1).

   Runs phases 1–3 against an environment oracle, collects the
   assumptions the class makes about classes the oracle does not know,
   and rewrites the class into *self-verifying* form: every method with
   deferred assumptions gets a guarded prologue (Figure 3) that invokes
   the dvm/RTVerifier dynamic component once, and class-wide
   assumptions are checked from an injected <clinit> prologue. *)

module CF = Bytecode.Classfile
module CP = Bytecode.Cp
module I = Bytecode.Instr
module D = Bytecode.Descriptor

type stats = {
  sv_static_checks : int; (* checks performed at the server *)
  sv_deferred : int; (* runtime check calls injected *)
  sv_guarded_methods : int;
}

type outcome =
  | Verified of Bytecode.Classfile.t * stats
  | Rejected of Verror.t list * stats

let zero_stats = { sv_static_checks = 0; sv_deferred = 0; sv_guarded_methods = 0 }

(* Guard-field name for a method: unique per (name, descriptor) and
   legal as a field name. *)
let guard_field_name m_name m_desc =
  let sanitized =
    String.map
      (fun c ->
        match c with
        | '<' | '>' | '(' | ')' | '/' | ';' | '[' -> '_'
        | c -> c)
      m_name
  in
  Printf.sprintf "__dvm$%s$%04x" sanitized (Hashtbl.hash (m_name ^ m_desc) land 0xffff)

(* Instructions performing one deferred check (block-relative, straight
   line). Returns the instruction list. *)
let check_call pool (a : Assumptions.assumption) =
  let ldc s = I.Ldc_str (CP.Builder.string pool s) in
  let call name desc =
    I.Invokestatic
      (CP.Builder.methodref pool ~cls:Rt_verifier.class_name ~name ~desc)
  in
  match a with
  | Assumptions.Class_exists c ->
    [ ldc c; call "checkClass" Rt_verifier.desc_check_class ]
  | Assumptions.Subclass_of { sub; super } ->
    [ ldc sub; ldc super; call "checkSubclass" Rt_verifier.desc_check_subclass ]
  | Assumptions.Field_exists { cls; name; desc; static } ->
    [
      ldc cls;
      ldc name;
      ldc desc;
      I.Iconst (if static then 1l else 0l);
      call "checkField" Rt_verifier.desc_check_member;
    ]
  | Assumptions.Method_exists { cls; name; desc; static } ->
    [
      ldc cls;
      ldc name;
      ldc desc;
      I.Iconst (if static then 1l else 0l);
      call "checkMethod" Rt_verifier.desc_check_member;
    ]

(* The guarded prologue of Figure 3:

     if (__checked == 0) {
       RTVerifier.check...(...); ...
       __checked = 1;
     }
     <original code>

   Block-relative targets; the skip target equals the block length, so
   it lands on the original first instruction after patching. *)
let guarded_prologue pool ~cls_name ~field checks =
  let getf =
    I.Getstatic (CP.Builder.fieldref pool ~cls:cls_name ~name:field ~desc:"I")
  in
  let putf =
    I.Putstatic (CP.Builder.fieldref pool ~cls:cls_name ~name:field ~desc:"I")
  in
  let body = List.concat_map (check_call pool) checks in
  let len = 2 + List.length body + 2 in
  (* [getf; ifne->end] @ body @ [iconst1; putf] *)
  [ getf; I.If_z (I.Ne, len) ] @ body @ [ I.Iconst 1l; putf ]

let rewrite_with_assumptions (cf : CF.t) (asms : Assumptions.t) :
    CF.t * int * int =
  let pool = CP.Builder.of_pool cf.CF.pool in
  let new_fields = ref [] in
  let deferred = ref 0 in
  let guarded = ref 0 in
  let class_wide = Assumptions.class_wide asms in
  (* The pool builder is append-only and interning, so guard prologues
     are patched in first and every refit runs against one final pool
     snapshot — identical bounds, without an [Array.sub] of the whole
     pool per guarded method. *)
  let patched =
    List.map
      (fun m ->
        match m.CF.m_code with
        | None -> Either.Left m
        | Some code ->
          let key = m.CF.m_name ^ m.CF.m_desc in
          let own = Assumptions.for_method asms key in
          let is_clinit = String.equal m.CF.m_name "<clinit>" in
          let checks = if is_clinit then own @ class_wide else own in
          if checks = [] then Either.Left m
          else begin
            deferred := !deferred + List.length checks;
            incr guarded;
            let block =
              if is_clinit then
                (* <clinit> runs exactly once; no guard needed. *)
                List.concat_map (check_call pool) checks
              else begin
                let field = guard_field_name m.CF.m_name m.CF.m_desc in
                new_fields :=
                  {
                    CF.f_name = field;
                    f_desc = "I";
                    f_flags = [ CF.Public; CF.Static ];
                  }
                  :: !new_fields;
                guarded_prologue pool ~cls_name:cf.CF.name ~field checks
              end
            in
            let code =
              Rewrite.Patch.apply_insertions code
                [ Rewrite.Patch.before 0 block ]
            in
            Either.Right (m, code)
          end)
      cf.CF.methods
  in
  (* Class-wide assumptions need a <clinit>; synthesize one if the
     class has none. *)
  let synthesized_clinit =
    if
      class_wide <> []
      && not
           (List.exists
              (fun (m : CF.meth) -> String.equal m.CF.m_name "<clinit>")
              cf.CF.methods)
    then begin
      deferred := !deferred + List.length class_wide;
      let block = List.concat_map (check_call pool) class_wide in
      Some (Array.of_list (block @ [ I.Return ]))
    end
    else None
  in
  let final_pool = CP.Builder.to_pool pool in
  let methods =
    List.map
      (function
        | Either.Left m -> m
        | Either.Right (m, code) ->
          let sg = D.method_sig_of_string m.CF.m_desc in
          let code =
            Rewrite.Patch.refit_bounds final_pool ~params:(D.param_slots sg)
              ~is_static:(CF.has_flag m.CF.m_flags CF.Static)
              code
          in
          { m with CF.m_code = Some code })
      patched
  in
  let methods =
    match synthesized_clinit with
    | None -> methods
    | Some instrs ->
      let clinit =
        {
          CF.m_name = "<clinit>";
          m_desc = "()V";
          m_flags = [ CF.Public; CF.Static ];
          m_code =
            Some
              {
                CF.max_stack =
                  Bytecode.Builder.estimate_max_stack final_pool instrs;
                max_locals = 1;
                instrs;
                handlers = [];
              };
        }
      in
      methods @ [ clinit ]
  in
  ( {
      cf with
      CF.methods;
      fields = cf.CF.fields @ List.rev !new_fields;
      pool = final_pool;
    },
    !deferred,
    !guarded )

(* Class-wide environment assumptions: the superclass chain and
   interfaces must exist (and remain superclasses) on the client. *)
let collect_class_assumptions oracle (cf : CF.t) asms =
  let add = Assumptions.add asms ~scope:Assumptions.Class_wide in
  (match cf.CF.super with
  | None -> ()
  | Some s ->
    if oracle s = None then begin
      add (Assumptions.Class_exists s);
      add (Assumptions.Subclass_of { sub = cf.CF.name; super = s })
    end);
  List.iter
    (fun i -> if oracle i = None then add (Assumptions.Class_exists i))
    cf.CF.interfaces

(* Check what is statically checkable about the hierarchy. *)
let check_hierarchy oracle (cf : CF.t) =
  match cf.CF.super with
  | None -> []
  | Some s -> (
    match oracle s with
    | None -> []
    | Some ci ->
      if ci.Oracle.ci_final then
        [
          Verror.make ~cls:cf.CF.name
            (Printf.sprintf "superclass %s is final" s);
        ]
      else [])

let verify ~oracle (cf : CF.t) : outcome =
  let structural_errors, structural_checks = Structural.run cf in
  if structural_errors <> [] then
    Rejected
      (structural_errors, { zero_stats with sv_static_checks = structural_checks })
  else begin
    let oracle_with_self = Oracle.extend oracle [ cf ] in
    let hierarchy_errors = check_hierarchy oracle cf in
    let asms = Assumptions.create () in
    let flow_errors, flow_checks = Dataflow.verify_class oracle_with_self asms cf in
    let static_checks = structural_checks + flow_checks in
    match hierarchy_errors @ flow_errors with
    | _ :: _ as errors ->
      Rejected (errors, { zero_stats with sv_static_checks = static_checks })
    | [] ->
      collect_class_assumptions oracle cf asms;
      let rewritten, deferred, guarded = rewrite_with_assumptions cf asms in
      Verified
        ( rewritten,
          {
            sv_static_checks = static_checks;
            sv_deferred = deferred;
            sv_guarded_methods = guarded;
          } )
  end

(* The service as a proxy filter: rejection becomes a Filter.Rejected,
   which the proxy converts into an error-propagation class. Statistics
   accumulate into the provided counters (the remote administration
   console reads them). *)
type counters = {
  mutable total_static_checks : int;
  mutable total_deferred : int;
  mutable classes_verified : int;
  mutable classes_rejected : int;
}

let fresh_counters () =
  {
    total_static_checks = 0;
    total_deferred = 0;
    classes_verified = 0;
    classes_rejected = 0;
  }

let filter ?(counters = fresh_counters ()) ~oracle () =
  Rewrite.Filter.make ~name:"verifier" (fun cf ->
      match verify ~oracle cf with
      | Verified (cf', stats) ->
        counters.total_static_checks <-
          counters.total_static_checks + stats.sv_static_checks;
        counters.total_deferred <- counters.total_deferred + stats.sv_deferred;
        counters.classes_verified <- counters.classes_verified + 1;
        if Telemetry.Global.on () then begin
          Telemetry.Global.add "verifier.static_checks"
            (Int64.of_int stats.sv_static_checks);
          Telemetry.Global.add "verifier.deferred_checks"
            (Int64.of_int stats.sv_deferred);
          Telemetry.Global.incr "verifier.classes_verified"
        end;
        cf'
      | Rejected (errors, stats) ->
        counters.total_static_checks <-
          counters.total_static_checks + stats.sv_static_checks;
        counters.classes_rejected <- counters.classes_rejected + 1;
        Rewrite.Filter.reject ~filter:"verifier" ~cls:cf.CF.name
          (String.concat "; " (List.map Verror.to_string errors)))
