(* The verification type lattice for the phase-3 dataflow analysis.

   Reference types are class (or array) names; Null is below every
   reference; Top is the unusable join of incompatible slots.
   Uninitialized object types track the allocating instruction so a
   constructor call initializes exactly the right values. Return
   addresses carry their subroutine entry point. *)

module D = Bytecode.Descriptor

type t =
  | Top
  | VInt
  | Null
  | Ref of string
  | Uninit of { pc : int; cls : string }
  | Uninit_this of string
  | Retaddr of int (* subroutine entry index *)

let equal a b =
  a == b
  ||
  match (a, b) with
  | Top, Top | VInt, VInt | Null, Null -> true
  | Ref x, Ref y -> String.equal x y
  | Uninit x, Uninit y -> x.pc = y.pc && String.equal x.cls y.cls
  | Uninit_this x, Uninit_this y -> String.equal x y
  | Retaddr x, Retaddr y -> x = y
  | (Top | VInt | Null | Ref _ | Uninit _ | Uninit_this _ | Retaddr _), _ ->
    false

let pp ppf = function
  | Top -> Format.pp_print_string ppf "top"
  | VInt -> Format.pp_print_string ppf "int"
  | Null -> Format.pp_print_string ppf "null"
  | Ref c -> Format.fprintf ppf "ref(%s)" c
  | Uninit { pc; cls } -> Format.fprintf ppf "uninit(%s@%d)" cls pc
  | Uninit_this c -> Format.fprintf ppf "uninitThis(%s)" c
  | Retaddr e -> Format.fprintf ppf "retaddr(%d)" e

let to_string v = Format.asprintf "%a" pp v

(* Internal name of a descriptor type, as used in Ref: classes keep
   their name, arrays get the "[..." form, ints are not references. *)
let rec name_of_desc_ty = function
  | D.Int -> "I"
  | D.Obj c -> c
  | D.Arr e -> "[" ^ desc_string_of e

and desc_string_of = function
  | D.Int -> "I"
  | D.Obj c -> "L" ^ c ^ ";"
  | D.Arr e -> "[" ^ desc_string_of e

let of_desc_ty = function
  | D.Int -> VInt
  | (D.Obj _ | D.Arr _) as ty -> Ref (name_of_desc_ty ty)

let of_desc_string s = of_desc_ty (D.ty_of_string s)

let is_reference = function
  | Null | Ref _ -> true
  | Top | VInt | Uninit _ | Uninit_this _ | Retaddr _ -> false

(* Decide [sub <: super] over names, recording an assumption and
   answering optimistically when the hierarchy is not fully known to
   the oracle. This is exactly the deferral mechanism of §3.1. *)
let name_assignable oracle assumptions ~scope ~sub ~super =
  match Oracle.is_subclass oracle ~sub ~super with
  | `Yes -> true
  | `No -> false
  | `Unknown ->
    Assumptions.add assumptions ~scope (Assumptions.Subclass_of { sub; super });
    true

(* Is a value of verification type [v] assignable where a reference of
   class [target] is expected? *)
let assignable_to_class oracle assumptions ~scope v ~target =
  match v with
  | Null -> true
  | Ref c -> name_assignable oracle assumptions ~scope ~sub:c ~super:target
  | Top | VInt | Uninit _ | Uninit_this _ | Retaddr _ -> false

(* Is [v] assignable where a value of descriptor type [ty] is
   expected? *)
let assignable_to_desc oracle assumptions ~scope v ty =
  match ty with
  | D.Int -> ( match v with VInt -> true | _ -> false)
  | D.Obj c -> assignable_to_class oracle assumptions ~scope v ~target:c
  | D.Arr _ ->
    assignable_to_class oracle assumptions ~scope v
      ~target:(name_of_desc_ty ty)

(* Least specific common supertype of two reference names. When the
   walk escapes the oracle, Object is the sound answer. *)
let common_super oracle a b =
  if String.equal a b then a
  else
    let rec walk name =
      match Oracle.is_subclass oracle ~sub:b ~super:name with
      | `Yes -> name
      | `No | `Unknown -> (
        match oracle name with
        | Some { Oracle.ci_super = Some s; _ } -> walk s
        | Some { Oracle.ci_super = None; _ } | None ->
          Bytecode.Classfile.java_lang_object)
    in
    walk a

(* Join (least upper bound) in the lattice. *)
let merge oracle a b =
  if equal a b then a
  else
    match (a, b) with
    | Top, _ | _, Top -> Top
    | Null, (Ref _ as r) | (Ref _ as r), Null -> r
    | Ref x, Ref y -> Ref (common_super oracle x y)
    | (VInt | Null | Ref _ | Uninit _ | Uninit_this _ | Retaddr _), _ -> Top
