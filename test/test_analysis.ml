(* Tests for the proxy-side dataflow analysis framework: CFG
   construction, dominators and loops, the abstract domains, the
   dataflow-exact bound recomputation behind `Rewrite.Patch.recompute`,
   JIT guard elision, static repartitioning — and the end-to-end
   property that security-check elision is observationally equivalent
   on every bundled workload. *)

module A = Analysis
module B = Bytecode.Builder
module CF = Bytecode.Classfile
module I = Bytecode.Instr

let check = Alcotest.check
let fail = Alcotest.fail
let static = [ CF.Public; CF.Static ]

let code_of cls name desc =
  match CF.find_method cls name desc with
  | Some { CF.m_code = Some c; _ } -> c
  | _ -> fail "method not found"

let meth_of cls name desc =
  match CF.find_method cls name desc with
  | Some m -> m
  | None -> fail "method not found"

(* Index of the first instruction matching [p]. *)
let idx_of (code : CF.code) p =
  let found = ref (-1) in
  Array.iteri
    (fun i ins -> if !found < 0 && p ins then found := i)
    code.CF.instrs;
  if !found < 0 then fail "instruction not found";
  !found

let facts_of cls name desc =
  match
    A.Pass.for_method cls.CF.pool ~cls:cls.CF.name (meth_of cls name desc)
  with
  | Some f -> f
  | None -> fail "no analysis facts"

(* ------------------------------------------------------------------ *)
(* CFG construction                                                    *)

(* Diamond: 0:Iload 1:If_z->4 | 2:Const 3:Goto->5 | 4:Const | 5:Ireturn *)
let diamond_cls =
  B.class_ "D"
    [
      B.meth ~flags:static "f" "(I)I"
        [
          B.Iload 0;
          B.If_z (I.Ne, "else");
          B.Const 1;
          B.Goto "join";
          B.Label "else";
          B.Const 2;
          B.Label "join";
          B.Ireturn;
        ];
    ]

let test_cfg_blocks () =
  let cfg = A.Cfg.of_code (code_of diamond_cls "f" "(I)I") in
  check Alcotest.int "blocks" 4 (A.Cfg.block_count cfg);
  check Alcotest.int "entry block spans [0..1]" 1 (A.Cfg.block cfg 0).A.Cfg.last;
  check Alcotest.int "instr 3 in block 1" 1 (A.Cfg.block_of_instr cfg 3);
  check Alcotest.int "instr 4 in block 2" 2 (A.Cfg.block_of_instr cfg 4);
  let succ_ids b = List.map fst (A.Cfg.block cfg b).A.Cfg.succs in
  check
    Alcotest.(list int)
    "entry branches to else and falls to then" [ 2; 1 ]
    (succ_ids 0);
  check Alcotest.(list int) "then jumps to join" [ 3 ] (succ_ids 1);
  check Alcotest.(list int) "else falls to join" [ 3 ] (succ_ids 2);
  Array.iter
    (fun r -> check Alcotest.bool "all blocks reachable" true r)
    cfg.A.Cfg.reachable

let test_cfg_exception_edges () =
  let cls =
    B.class_ "E"
      [
        B.meth ~flags:static
          ~handlers:[ ("try_s", "try_e", "h", None) ]
          "f" "()I"
          [
            B.Label "try_s";
            B.Const 1;
            B.Pop;
            B.Label "try_e";
            B.Const 0;
            B.Ireturn;
            B.Label "h";
            B.Pop;
            B.Const 9;
            B.Ireturn;
          ];
      ]
  in
  let cfg = A.Cfg.of_code (code_of cls "f" "()I") in
  let handler_block = A.Cfg.block_of_instr cfg 4 in
  let exn_succs =
    List.filter (fun (_, k) -> k = A.Cfg.Exn) (A.Cfg.block cfg 0).A.Cfg.succs
  in
  check
    Alcotest.(list int)
    "covered block has an exn edge to the handler" [ handler_block ]
    (List.map fst exn_succs);
  check Alcotest.bool "handler reachable via the exn edge" true
    cfg.A.Cfg.reachable.(handler_block)

let test_cfg_malformed () =
  let raises code =
    match A.Cfg.of_code code with
    | _ -> fail "expected Malformed"
    | exception A.Cfg.Malformed _ -> ()
  in
  raises
    { CF.max_stack = 1; max_locals = 1; instrs = [| I.Goto 99 |]; handlers = [] };
  raises
    {
      CF.max_stack = 1;
      max_locals = 1;
      instrs = [| I.Iconst 1l |];
      handlers = [];
    }

(* ------------------------------------------------------------------ *)
(* Dominators and loops                                                *)

let test_dominators () =
  let cfg = A.Cfg.of_code (code_of diamond_cls "f" "(I)I") in
  let d = A.Dom.compute cfg in
  check Alcotest.(option int) "entry has no idom" None (A.Dom.idom d 0);
  check Alcotest.(option int) "then's idom is entry" (Some 0) (A.Dom.idom d 1);
  check Alcotest.(option int) "else's idom is entry" (Some 0) (A.Dom.idom d 2);
  check
    Alcotest.(option int)
    "join's idom is entry (not a branch arm)" (Some 0) (A.Dom.idom d 3);
  check Alcotest.bool "entry dominates join" true (A.Dom.dominates d 0 3);
  check Alcotest.bool "then does not dominate join" false (A.Dom.dominates d 1 3);
  check Alcotest.(list (pair int int)) "diamond has no back edges" []
    (A.Dom.back_edges d)

let test_loops () =
  let cls =
    B.class_ "L"
      [
        B.meth ~flags:static "count" "(I)I"
          [
            B.Const 0;
            B.Istore 1;
            B.Label "head";
            B.Iload 1;
            B.Iload 0;
            B.If_icmp (I.Ge, "exit");
            B.Inc (1, 1);
            B.Goto "head";
            B.Label "exit";
            B.Iload 1;
            B.Ireturn;
          ];
      ]
  in
  let cfg = A.Cfg.of_code (code_of cls "count" "(I)I") in
  let d = A.Dom.compute cfg in
  match A.Dom.loops d with
  | [ loop ] ->
    check Alcotest.int "loop header holds the comparison"
      (A.Cfg.block_of_instr cfg 2)
      loop.A.Dom.header;
    check Alcotest.int "one latch" 1 (List.length loop.A.Dom.latches);
    check Alcotest.int "body is header + latch" 2
      (Hashtbl.length loop.A.Dom.body)
  | ls -> fail (Printf.sprintf "expected 1 loop, found %d" (List.length ls))

(* --- QCheck: [Dom.compute] (the RPO fixpoint) vs the textbook
   definition — a dominates b iff every entry→b path passes through a,
   i.e. iff b becomes unreachable once a is removed from the graph.
   Random small CFGs of gotos, conditionals and early returns cover
   joins, unreachable tails and irreducible shapes. --- *)

let naive_dominates cfg a b =
  let n = A.Cfg.block_count cfg in
  let reach_avoiding skip =
    let seen = Array.make n false in
    let rec go u =
      if u <> skip && not seen.(u) then begin
        seen.(u) <- true;
        List.iter (fun (v, _) -> go v) (A.Cfg.block cfg u).A.Cfg.succs
      end
    in
    if skip <> 0 then go 0;
    seen
  in
  if not (reach_avoiding (-1)).(b) then false
  else if a = b then true
  else not (reach_avoiding a).(b)

let arbitrary_dom_code =
  let gen =
    QCheck.Gen.(
      int_range 2 14 >>= fun n ->
      let instr i =
        if i = n - 1 then return I.Return
        else
          frequency
            [
              (4, return I.Nop);
              (2, map (fun t -> I.Goto t) (int_range 0 (n - 1)));
              (3, map (fun t -> I.If_z (I.Eq, t)) (int_range 0 (n - 1)));
              (1, return I.Return);
            ]
      in
      map
        (fun instrs ->
          {
            CF.max_stack = 2;
            max_locals = 1;
            instrs = Array.of_list instrs;
            handlers = [];
          })
        (flatten_l (List.init n instr)))
  in
  QCheck.make gen ~print:(fun code ->
      String.concat "\n"
        (List.mapi
           (fun i ins -> Printf.sprintf "%2d: %s" i (I.to_string ins))
           (Array.to_list code.CF.instrs)))

let prop_dom_matches_naive =
  QCheck.Test.make ~name:"dominators match the path-based definition"
    ~count:300 arbitrary_dom_code (fun code ->
      let cfg = A.Cfg.of_code code in
      let dom = A.Dom.compute cfg in
      let n = A.Cfg.block_count cfg in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if A.Dom.dominates dom a b <> naive_dominates cfg a b then
            ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Abstract domains                                                    *)

let nullness_cls =
  B.class_ "N"
    [
      (* the array in local 1 comes from newarray: provably non-null *)
      B.meth ~flags:static "nn" "()I"
        [
          B.Const 8;
          B.Newarray;
          B.Astore 1;
          B.Aload 1;
          B.Arraylength;
          B.Ireturn;
        ];
      (* local 1 is provably null *)
      B.meth ~flags:static "nl" "()I"
        [ B.Null; B.Astore 1; B.Aload 1; B.Arraylength; B.Ireturn ];
    ]

let nullness_at cls name =
  let f = facts_of cls name "()I" in
  let at = idx_of f.A.Pass.code (fun i -> i = I.Arraylength) in
  match (Lazy.force f.A.Pass.nullness).A.Nullness.before.(at) with
  | Some st -> A.Nullness.stack_nonnull st ~depth:0
  | None -> fail "arraylength unreachable?"

let test_nullness () =
  check Alcotest.bool "newarray-origin value is non-null" true
    (nullness_at nullness_cls "nn");
  check Alcotest.bool "null-origin value is not provably non-null" false
    (nullness_at nullness_cls "nl")

let range_cls =
  B.class_ "R"
    [
      (* constant index 3 into a length-8 array, through a local *)
      B.meth ~flags:static "ib" "()I"
        [
          B.Const 8;
          B.Newarray;
          B.Astore 1;
          B.Aload 1;
          B.Const 3;
          B.Iaload;
          B.Ireturn;
        ];
      (* index 8 into a length-8 array: not provable *)
      B.meth ~flags:static "ob" "()I"
        [
          B.Const 8;
          B.Newarray;
          B.Astore 1;
          B.Aload 1;
          B.Const 8;
          B.Iaload;
          B.Ireturn;
        ];
    ]

let in_bounds_at cls name =
  let f = facts_of cls name "()I" in
  let at = idx_of f.A.Pass.code (fun i -> i = I.Iaload) in
  match (Lazy.force f.A.Pass.ranges).A.Intrange.before.(at) with
  | Some st -> A.Intrange.in_bounds st ~idx_depth:0 ~arr_depth:1
  | None -> fail "iaload unreachable?"

let test_intrange () =
  check Alcotest.bool "constant index within newarray length" true
    (in_bounds_at range_cls "ib");
  check Alcotest.bool "index = length is not in bounds" false
    (in_bounds_at range_cls "ob")

(* Regression: a store to a local must sever the origin link held by
   stale stack slots. Here local 1 is overwritten with null while its
   *old* (non-null) value is still on the stack; the dereference of
   that old value must not settle the overwritten local as non-null. *)
let test_nullness_stale_origin () =
  let cls =
    B.class_ "NStale"
      [
        B.meth ~flags:static "s" "()I"
          [
            B.Const 8;
            B.Newarray;
            B.Astore 1;
            B.Aload 1;
            B.Null;
            B.Astore 1;
            (* deref of the stale stack value: must not refine local 1 *)
            B.Arraylength;
            B.Pop;
            B.Aload 1;
            B.Arraylength;
            B.Ireturn;
          ];
      ]
  in
  let f = facts_of cls "s" "()I" in
  let last = ref (-1) in
  Array.iteri
    (fun i ins -> if ins = I.Arraylength then last := i)
    f.A.Pass.code.CF.instrs;
  match (Lazy.force f.A.Pass.nullness).A.Nullness.before.(!last) with
  | Some st ->
    check Alcotest.bool
      "null local is not marked non-null through a stale stack slot" false
      (A.Nullness.stack_nonnull st ~depth:0)
  | None -> fail "final arraylength unreachable?"

(* Regression: `ifnull` whose target *is* the fall-through reaches the
   same successor whether the value is null or not, so neither edge may
   refine the origin local. *)
let test_nullness_degenerate_branch () =
  let cls =
    B.class_ "NDegen"
      [
        B.meth ~flags:static "d" "(Ljava/lang/Object;)I"
          [
            B.Aload 0;
            B.If_null (true, "next");
            B.Label "next";
            B.Aload 0;
            B.Arraylength;
            B.Ireturn;
          ];
      ]
  in
  let f = facts_of cls "d" "(Ljava/lang/Object;)I" in
  let at = idx_of f.A.Pass.code (fun i -> i = I.Arraylength) in
  match (Lazy.force f.A.Pass.nullness).A.Nullness.before.(at) with
  | Some st ->
    check Alcotest.bool
      "self-targeting ifnull proves nothing about its operand" false
      (A.Nullness.stack_nonnull st ~depth:0)
  | None -> fail "arraylength unreachable?"

(* Regression (intrange flavour of the stale-origin bug): local 0 is
   overwritten with an unbounded value while its old value is compared
   on the stack; the branch must not narrow the *new* local through
   the stale origin link. *)
let test_intrange_stale_origin () =
  let cls =
    B.class_ "RStale"
      [
        B.meth ~flags:static "s" "(II)I"
          [
            B.Iload 0;
            B.Iload 1;
            B.Istore 0;
            B.Const 8;
            (* compares the OLD local 0; the new one is unbounded *)
            B.If_icmp (I.Ge, "exit");
            B.Iload 0;
            B.Ireturn;
            B.Label "exit";
            B.Const 0;
            B.Ireturn;
          ];
      ]
  in
  let f = facts_of cls "s" "(II)I" in
  let at = idx_of f.A.Pass.code (fun i -> i = I.Ireturn) in
  match (Lazy.force f.A.Pass.ranges).A.Intrange.before.(at) with
  | Some st -> (
    match A.Intrange.stack_at st ~depth:0 with
    | Some av ->
      check
        Alcotest.(option int)
        "overwritten local is not narrowed through a stale stack slot" None
        av.A.Intrange.iv.A.Intrange.hi
    | None -> fail "empty stack at return?")
  | None -> fail "return unreachable?"

(* Regression: an integer branch whose target is the fall-through
   proves nothing on either edge. *)
let test_intrange_degenerate_branch () =
  let cls =
    B.class_ "RDegen"
      [
        B.meth ~flags:static "d" "(I)I"
          [
            B.Iload 0;
            B.If_z (I.Ge, "next");
            B.Label "next";
            B.Iload 0;
            B.Ireturn;
          ];
      ]
  in
  let f = facts_of cls "d" "(I)I" in
  let at = idx_of f.A.Pass.code (fun i -> i = I.Ireturn) in
  match (Lazy.force f.A.Pass.ranges).A.Intrange.before.(at) with
  | Some st -> (
    match A.Intrange.stack_at st ~depth:0 with
    | Some av ->
      check
        Alcotest.(option int)
        "self-targeting ifge does not bound the operand below" None
        av.A.Intrange.iv.A.Intrange.lo;
      check
        Alcotest.(option int)
        "self-targeting ifge does not bound the operand above" None
        av.A.Intrange.iv.A.Intrange.hi
    | None -> fail "empty stack at return?")
  | None -> fail "return unreachable?"

let test_checks_available () =
  let body tail = (B.Const 1 :: tail) @ [ B.Const 0; B.Ireturn ] in
  let cls =
    B.class_ "C"
      [
        B.meth ~flags:static "plain" "()I" (body [ B.Pop; B.Const 2; B.Pop ]);
        B.meth ~flags:static "locked" "()I"
          (body [ B.Pop; B.Null; B.Monitorenter ]);
      ]
  in
  let gen at = if at = 0 then [ "p" ] else [] in
  let r name =
    A.Checks.analyze (A.Cfg.of_code (code_of cls name "()I")) ~gen
  in
  let plain = r "plain" in
  check Alcotest.bool "not available before the generating site" false
    (A.Checks.available plain ~at:0 ~fact:"p");
  check Alcotest.bool "available downstream" true
    (A.Checks.available plain ~at:2 ~fact:"p");
  let locked = r "locked" in
  let after_monitor =
    idx_of (code_of cls "locked" "()I") (fun i -> i = I.Monitorenter) + 1
  in
  check Alcotest.bool "monitorenter kills availability" false
    (A.Checks.available locked ~at:after_monitor ~fact:"p")

(* ------------------------------------------------------------------ *)
(* Call-graph reachability and static repartitioning                   *)

let reach_cls =
  B.class_ "A"
    [
      B.meth ~flags:static "main" "()V"
        [ B.Invokestatic ("A", "used", "()I"); B.Pop; B.Return ];
      B.meth ~flags:static "used" "()I" [ B.Const 1; B.Ireturn ];
      B.meth ~flags:static "dead" "()I" [ B.Const 2; B.Ireturn ];
    ]

let test_reach () =
  let r = A.Reach.analyze [ reach_cls ] ~entries:[ ("A", "main", "()V") ] in
  check Alcotest.bool "called method reachable" true
    (A.Reach.is_reachable r ~cls:"A" ~meth:"used" ~desc:"()I");
  check Alcotest.bool "uncalled method not reachable" false
    (A.Reach.is_reachable r ~cls:"A" ~meth:"dead" ~desc:"()I")

let test_of_static () =
  let p =
    Opt.First_use.of_static [ reach_cls ] ~entries:[ ("A", "main", "()V") ]
  in
  check Alcotest.bool "reachable method is used" true
    (Opt.First_use.is_used p (Opt.First_use.method_key "A" "used" "()I"));
  check Alcotest.bool "dead method is cold" false
    (Opt.First_use.is_used p (Opt.First_use.method_key "A" "dead" "()I"));
  let _hot, cold = Opt.First_use.partition p reach_cls in
  check Alcotest.bool "partition sends the dead method cold" true
    (List.exists (fun m -> m.CF.m_name = "dead") cold)

(* ------------------------------------------------------------------ *)
(* Patch.recompute regression: dead bytecode after an unconditional
   branch. The original method reaches a depth-5 region through a
   conditional branch; an eliding pass turns the branch into a goto,
   stranding the deep region. `refit_bounds` keeps the stale bound 5
   (the original bounds are a floor); `recompute` walks only reachable
   paths and shrinks max_stack back to the true depth 2. *)

let test_recompute_dead_code () =
  let cls =
    B.class_ "P"
      [
        B.meth ~flags:static "p" "(I)I"
          [
            B.Iload 0;
            B.If_z (I.Ne, "deep");
            B.Const 1;
            B.Ireturn;
            B.Label "deep";
            B.Const 1;
            B.Const 2;
            B.Const 3;
            B.Const 4;
            B.Const 5;
            B.Add;
            B.Add;
            B.Add;
            B.Add;
            B.Ireturn;
          ];
      ]
  in
  let code = code_of cls "p" "(I)I" in
  check Alcotest.int "original bound covers the deep region" 5
    code.CF.max_stack;
  (* the "eliding pass": branch becomes an unconditional goto *)
  let instrs = Array.copy code.CF.instrs in
  instrs.(1) <- I.Goto 2;
  let dead = { code with CF.instrs } in
  let refit =
    Rewrite.Patch.refit_bounds cls.CF.pool ~params:1 ~is_static:true dead
  in
  let exact =
    Rewrite.Patch.recompute cls.CF.pool ~params:1 ~is_static:true dead
  in
  check Alcotest.int "refit keeps the stale over-estimate" 5
    refit.CF.max_stack;
  check Alcotest.int "recompute is exact over reachable paths" 2
    exact.CF.max_stack;
  check Alcotest.bool "regression: recompute below refit" true
    (exact.CF.max_stack < refit.CF.max_stack);
  check Alcotest.int "locals unchanged" 1 exact.CF.max_locals

(* Regression: a net-stack-increasing loop has no depth fixpoint (the
   depth lattice joins by max, unwidened); recompute must fall back to
   the conservative estimate instead of leaking Solver.Diverged. *)
let test_recompute_divergent_loop () =
  let code =
    {
      CF.max_stack = 1;
      max_locals = 1;
      instrs = [| I.Iconst 1l; I.Goto 0 |];
      handlers = [];
    }
  in
  let r =
    Rewrite.Patch.recompute diamond_cls.CF.pool ~params:0 ~is_static:true code
  in
  check Alcotest.bool "divergent code keeps a conservative bound" true
    (r.CF.max_stack >= 1)

(* ------------------------------------------------------------------ *)
(* JIT guard elision                                                   *)

let guard_cls =
  B.class_ "G"
    [
      B.meth ~flags:static "get" "()I"
        [
          B.Const 8;
          B.Newarray;
          B.Astore 1;
          B.Aload 1;
          B.Const 3;
          B.Iaload;
          B.Ireturn;
        ];
      B.meth ~flags:static "oob" "()I"
        [
          B.Const 2;
          B.Newarray;
          B.Astore 1;
          B.Aload 1;
          B.Const 5;
          B.Iaload;
          B.Ireturn;
        ];
    ]

let translate_guarded ?facts name =
  let stats = Jit.Translate.fresh_guard_stats () in
  let ir =
    Jit.Translate.translate_method ?facts ~stats guard_cls.CF.pool
      (meth_of guard_cls name "()I")
  in
  (ir, stats)

let test_guard_elision () =
  let plain, s0 = translate_guarded "get" in
  check Alcotest.int "without facts: null + bounds guards emitted" 2
    s0.Jit.Translate.emitted;
  check Alcotest.int "without facts: nothing elided" 0 s0.Jit.Translate.elided;
  let facts = facts_of guard_cls "get" "()I" in
  let elided, s1 = translate_guarded ~facts "get" in
  check Alcotest.int "with facts: both guards elided" 2 s1.Jit.Translate.elided;
  check Alcotest.int "with facts: nothing emitted" 0 s1.Jit.Translate.emitted;
  let result ir =
    match Jit.Exec.run ir [] with
    | Some (Jit.Exec.Vint r) -> Int32.to_int r
    | _ -> fail "kernel: no result"
  in
  check Alcotest.int "guarded and elided kernels agree" (result plain)
    (result elided)

let test_guard_catches_fault () =
  let faults (ir, _) =
    match Jit.Exec.run ir [] with
    | _ -> false
    | exception Jit.Exec.Kernel_fault _ -> true
  in
  check Alcotest.bool "unprovable access keeps its guard (no facts)" true
    (faults (translate_guarded "oob"));
  let facts = facts_of guard_cls "oob" "()I" in
  check Alcotest.bool "unprovable access keeps its guard (with facts)" true
    (faults (translate_guarded ~facts "oob"))

(* Random straight-line array programs with constant in-bounds
   indices: guard elision must never change the kernel's result, and
   facts must never make the translation emit more guards. *)
let prop_guard_elision_equivalent =
  let gen =
    QCheck.Gen.(
      let* n = 1 -- 8 in
      let* writes = list_size (0 -- 6) (pair (0 -- (n - 1)) (0 -- 100)) in
      let* k = 0 -- (n - 1) in
      return (n, writes, k))
  in
  let arbitrary =
    QCheck.make gen ~print:(fun (n, writes, k) ->
        Printf.sprintf "n=%d writes=[%s] read=%d" n
          (String.concat ";"
             (List.map (fun (i, v) -> Printf.sprintf "%d<-%d" i v) writes))
          k)
  in
  QCheck.Test.make ~name:"guard elision preserves kernel semantics" ~count:60
    arbitrary
    (fun (n, writes, k) ->
      let body =
        [ B.Const n; B.Newarray; B.Astore 1 ]
        @ List.concat_map
            (fun (i, v) -> [ B.Aload 1; B.Const i; B.Const v; B.Iastore ])
            writes
        @ [ B.Aload 1; B.Const k; B.Iaload; B.Ireturn ]
      in
      let cls = B.class_ "Q" [ B.meth ~flags:static "q" "()I" body ] in
      let m = meth_of cls "q" "()I" in
      let run ?facts () =
        let stats = Jit.Translate.fresh_guard_stats () in
        let ir =
          Jit.Translate.translate_method ?facts ~stats cls.CF.pool m
        in
        match Jit.Exec.run ir [] with
        | Some (Jit.Exec.Vint r) -> (Int32.to_int r, stats)
        | _ -> fail "kernel: no result"
      in
      let plain, s0 = run () in
      A.Pass.clear ();
      let facts = facts_of cls "q" "()I" in
      let elided, s1 = run ~facts () in
      let expected =
        List.fold_left (fun acc (i, v) -> if i = k then v else acc) 0 writes
      in
      plain = expected && elided = expected
      && s1.Jit.Translate.emitted <= s0.Jit.Translate.emitted
      && s1.Jit.Translate.elided > 0)

(* ------------------------------------------------------------------ *)
(* Observational equivalence of security-check elision                 *)

(* One permission per app, every worker class covered — the same
   policy shape the bench's elide phase uses, so elision and hoisting
   both actually fire. *)
let cover_policy ~default (app : Workloads.Appgen.app) =
  let perm = "work." ^ app.Workloads.Appgen.spec.Workloads.Appgen.name in
  let ops =
    List.filter_map
      (fun (c : CF.t) ->
        if List.exists (fun (m : CF.meth) -> m.CF.m_name = "hot") c.CF.methods
        then
          Some
            (Printf.sprintf {|<operation permission="%s" class="%s" method="*"/>|}
               perm c.CF.name)
        else None)
      app.Workloads.Appgen.classes
  in
  let grant =
    if default = "allow" then
      Printf.sprintf {|<grant permission="%s"/>|} perm
    else ""
  in
  Security.Policy_xml.parse
    (Printf.sprintf
       {|<policy default="%s">
           <domain name="apps">%s</domain>
           %s
           <principal classprefix="" domain="apps"/>
         </policy>|}
       default grant
       (String.concat "\n" ops))

let rec is_subseq xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs', y :: ys' -> if x = y then is_subseq xs' ys' else is_subseq xs ys'

let run_pair ~default spec =
  let app = Workloads.Apps.build_small spec in
  let policy = cover_policy ~default app in
  let arch = Dvm.Experiment.Dvm { cached = false } in
  A.Pass.clear ();
  let off = Dvm.Experiment.run ~policy ~elide:false ~arch app in
  A.Pass.clear ();
  let on = Dvm.Experiment.run ~policy ~elide:true ~arch app in
  (off, on)

let check_equivalent name (off : Dvm.Experiment.result)
    (on : Dvm.Experiment.result) =
  check Alcotest.string (name ^ ": output byte-identical")
    off.Dvm.Experiment.r_output on.Dvm.Experiment.r_output;
  check Alcotest.bool (name ^ ": unelided run decided something") true
    (off.Dvm.Experiment.r_decisions <> []);
  check Alcotest.bool
    (name ^ ": elided decisions are a subsequence of the unelided ones")
    true
    (is_subseq on.Dvm.Experiment.r_decisions off.Dvm.Experiment.r_decisions);
  let verdicts r =
    List.sort_uniq compare r.Dvm.Experiment.r_decisions
  in
  check
    Alcotest.(list (pair string bool))
    (name ^ ": same (permission, verdict) set")
    (verdicts off) (verdicts on);
  check Alcotest.bool (name ^ ": elision never adds checks") true
    (on.Dvm.Experiment.r_enforcement_checks
    <= off.Dvm.Experiment.r_enforcement_checks)

let test_workload_equivalence () =
  let improved = ref 0 in
  List.iter
    (fun spec ->
      let name = spec.Workloads.Appgen.name in
      let off, on = run_pair ~default:"allow" spec in
      check_equivalent name off on;
      if
        on.Dvm.Experiment.r_enforcement_checks
        < off.Dvm.Experiment.r_enforcement_checks
      then incr improved)
    Workloads.Apps.all_specs;
  check Alcotest.bool "elision strictly reduces checks on most workloads" true
    (!improved >= 3)

(* Denial path: with a default-deny policy the very first (possibly
   hoisted) check throws; elided and unelided runs must fail at the
   same observable point with the same decisions. *)
let test_workload_denial_equivalence () =
  let off, on = run_pair ~default:"deny" Workloads.Apps.jlex in
  check Alcotest.string "denied runs produce identical output"
    off.Dvm.Experiment.r_output on.Dvm.Experiment.r_output;
  check Alcotest.bool "the denial decision is recorded" true
    (List.exists (fun (_, v) -> not v) off.Dvm.Experiment.r_decisions);
  check
    Alcotest.(list (pair string bool))
    "identical decision sequences on the denial path"
    off.Dvm.Experiment.r_decisions on.Dvm.Experiment.r_decisions

let () =
  Alcotest.run "analysis"
    [
      ( "cfg",
        [
          Alcotest.test_case "basic blocks and edges" `Quick test_cfg_blocks;
          Alcotest.test_case "exception edges" `Quick test_cfg_exception_edges;
          Alcotest.test_case "malformed code rejected" `Quick
            test_cfg_malformed;
        ] );
      ( "dom",
        [
          Alcotest.test_case "dominators on a diamond" `Quick test_dominators;
          Alcotest.test_case "natural loop detection" `Quick test_loops;
          QCheck_alcotest.to_alcotest prop_dom_matches_naive;
        ] );
      ( "domains",
        [
          Alcotest.test_case "nullness" `Quick test_nullness;
          Alcotest.test_case "nullness: stale origin severed" `Quick
            test_nullness_stale_origin;
          Alcotest.test_case "nullness: degenerate branch" `Quick
            test_nullness_degenerate_branch;
          Alcotest.test_case "integer ranges" `Quick test_intrange;
          Alcotest.test_case "ranges: stale origin severed" `Quick
            test_intrange_stale_origin;
          Alcotest.test_case "ranges: degenerate branch" `Quick
            test_intrange_degenerate_branch;
          Alcotest.test_case "available checks" `Quick test_checks_available;
        ] );
      ( "reach",
        [
          Alcotest.test_case "call-graph reachability" `Quick test_reach;
          Alcotest.test_case "static cold partition" `Quick test_of_static;
        ] );
      ( "recompute",
        [
          Alcotest.test_case "dead code after unconditional branch" `Quick
            test_recompute_dead_code;
          Alcotest.test_case "divergent stack loop falls back" `Quick
            test_recompute_divergent_loop;
        ] );
      ( "guards",
        [
          Alcotest.test_case "elision on provable accesses" `Quick
            test_guard_elision;
          Alcotest.test_case "unprovable accesses keep guards" `Quick
            test_guard_catches_fault;
          QCheck_alcotest.to_alcotest prop_guard_elision_equivalent;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "elision is observationally equivalent" `Slow
            test_workload_equivalence;
          Alcotest.test_case "denial path unchanged" `Quick
            test_workload_denial_equivalence;
        ] );
    ]
