(* Unit and property tests for the bytecode library: descriptors,
   constant pool, instructions, assembler, encoder/decoder. *)

module D = Bytecode.Descriptor
module CP = Bytecode.Cp
module I = Bytecode.Instr
module CF = Bytecode.Classfile
module B = Bytecode.Builder
module Enc = Bytecode.Encode
module Dec = Bytecode.Decode

let check = Alcotest.check
let fail = Alcotest.fail

(* --- Descriptors. --- *)

let test_descriptor_roundtrip () =
  let cases =
    [ "I"; "Ljava/lang/String;"; "[I"; "[[I"; "[Ljava/lang/Object;" ]
  in
  List.iter
    (fun s -> check Alcotest.string "field" s (D.ty_to_string (D.ty_of_string s)))
    cases;
  let mcases =
    [ "()V"; "(I)I"; "(ILjava/lang/String;[I)Ljava/lang/Object;"; "([[I)V" ]
  in
  List.iter
    (fun s ->
      check Alcotest.string "method" s
        (D.method_sig_to_string (D.method_sig_of_string s)))
    mcases

let test_descriptor_errors () =
  let bad_fields = [ ""; "X"; "L;"; "Lfoo"; "II"; "["; "(I)V" ] in
  List.iter
    (fun s ->
      match D.ty_of_string s with
      | _ -> fail (Printf.sprintf "accepted bad field descriptor %S" s)
      | exception D.Bad_descriptor _ -> ())
    bad_fields;
  let bad_methods = [ ""; "()"; "(I"; "()VV"; "(V)V"; "I" ] in
  List.iter
    (fun s ->
      match D.method_sig_of_string s with
      | _ -> fail (Printf.sprintf "accepted bad method descriptor %S" s)
      | exception D.Bad_descriptor _ -> ())
    bad_methods

let test_descriptor_slots () =
  check Alcotest.int "0 params" 0 (D.param_slots (D.method_sig_of_string "()V"));
  check Alcotest.int "3 params" 3
    (D.param_slots (D.method_sig_of_string "(I[ILjava/lang/String;)I"))

(* --- Constant pool. --- *)

let test_cp_interning () =
  let b = CP.Builder.create () in
  let i1 = CP.Builder.utf8 b "hello" in
  let i2 = CP.Builder.utf8 b "hello" in
  check Alcotest.int "utf8 interned" i1 i2;
  let f1 = CP.Builder.fieldref b ~cls:"A" ~name:"x" ~desc:"I" in
  let f2 = CP.Builder.fieldref b ~cls:"A" ~name:"x" ~desc:"I" in
  check Alcotest.int "fieldref interned" f1 f2;
  let pool = CP.Builder.to_pool b in
  let r = CP.get_fieldref pool f1 in
  check Alcotest.string "class" "A" r.CP.ref_class;
  check Alcotest.string "name" "x" r.CP.ref_name;
  check Alcotest.string "desc" "I" r.CP.ref_desc

let test_cp_of_pool_preserves_indices () =
  let b = CP.Builder.create () in
  let m = CP.Builder.methodref b ~cls:"A" ~name:"f" ~desc:"()V" in
  let pool = CP.Builder.to_pool b in
  let b2 = CP.Builder.of_pool pool in
  let m2 = CP.Builder.methodref b2 ~cls:"A" ~name:"f" ~desc:"()V" in
  check Alcotest.int "existing entry reused" m m2;
  let extra = CP.Builder.utf8 b2 "new" in
  check Alcotest.bool "new entry appended" true (extra >= CP.size pool)

let test_cp_errors () =
  let b = CP.Builder.create () in
  let u = CP.Builder.utf8 b "s" in
  let pool = CP.Builder.to_pool b in
  (match CP.entry pool 0 with
  | _ -> fail "index 0 should be invalid"
  | exception CP.Invalid_index 0 -> ());
  (match CP.get_class_name pool u with
  | _ -> fail "utf8 is not a class"
  | exception CP.Wrong_kind _ -> ());
  match CP.entry pool 999 with
  | _ -> fail "out of range"
  | exception CP.Invalid_index _ -> ()

(* --- Instructions. --- *)

let test_instr_targets () =
  check (Alcotest.list Alcotest.int) "goto" [ 7 ] (I.targets (I.Goto 7));
  check (Alcotest.list Alcotest.int) "switch" [ 1; 2; 3 ]
    (I.targets (I.Tableswitch { low = 0l; targets = [| 2; 3 |]; default = 1 }));
  check (Alcotest.list Alcotest.int) "iadd none" [] (I.targets I.Iadd);
  let mapped = I.map_targets (fun t -> t + 10) (I.If_icmp (I.Lt, 5)) in
  check (Alcotest.list Alcotest.int) "mapped" [ 15 ] (I.targets mapped)

let test_instr_successors () =
  check (Alcotest.list Alcotest.int) "fallthrough" [ 4 ]
    (I.successors 3 I.Iadd);
  check (Alcotest.list Alcotest.int) "branch+fall" [ 9; 4 ]
    (I.successors 3 (I.If_z (I.Eq, 9)));
  check (Alcotest.list Alcotest.int) "return" [] (I.successors 3 I.Return)

(* --- Builder. --- *)

let test_builder_labels () =
  let pool = CP.Builder.create () in
  let code =
    B.assemble pool
      [
        B.Const 10;
        B.Label "loop";
        B.Const 1;
        B.Sub;
        B.Dup;
        B.If_z (I.Gt, "loop");
        B.Return;
      ]
  in
  check Alcotest.int "length" 6 (Array.length code);
  match code.(4) with
  | I.If_z (I.Gt, 1) -> ()
  | i -> fail ("bad branch: " ^ I.to_string i)

let test_builder_duplicate_label () =
  let pool = CP.Builder.create () in
  match B.assemble pool [ B.Label "a"; B.Pop; B.Label "a"; B.Return ] with
  | _ -> fail "duplicate label accepted"
  | exception B.Duplicate_label "a" -> ()

let test_builder_unbound_label () =
  let pool = CP.Builder.create () in
  match B.assemble pool [ B.Goto "nowhere"; B.Return ] with
  | _ -> fail "unbound label accepted"
  | exception B.Unbound_label "nowhere" -> ()

let test_builder_max_locals () =
  let cls =
    B.class_ "T"
      [ B.meth ~flags:[ CF.Public; CF.Static ] "f" "(II)I"
          [ B.Iload 0; B.Iload 1; B.Add; B.Istore 5; B.Iload 5; B.Ireturn ] ]
  in
  match CF.find_method cls "f" "(II)I" with
  | Some { CF.m_code = Some c; _ } ->
    check Alcotest.bool "max_locals >= 6" true (c.CF.max_locals >= 6);
    check Alcotest.bool "max_stack >= 2" true (c.CF.max_stack >= 2)
  | _ -> fail "method not found"

(* --- Encode / decode. --- *)

let sample_class () =
  B.class_ "com/example/Sample" ~super:"java/lang/Object"
    ~interfaces:[ "com/example/Iface" ]
    ~fields:
      [
        B.field "x" "I";
        B.field ~flags:[ CF.Public; CF.Static ] "shared" "Ljava/lang/String;";
      ]
    ~attributes:[ ("com.example.note", "\x00\x01binary\xffdata") ]
    [
      B.default_init "java/lang/Object";
      B.meth ~flags:[ CF.Public; CF.Static ] "main" "()V"
        ~handlers:[ ("try", "end", "catch", Some "java/lang/Exception") ]
        [
          B.Label "try";
          B.Getstatic ("java/lang/System", "out", "Ljava/io/OutputStream;");
          B.Push_str "hi";
          B.Invokevirtual
            ("java/io/OutputStream", "println", "(Ljava/lang/String;)V");
          B.Label "end";
          B.Return;
          B.Label "catch";
          B.Pop;
          B.Return;
        ];
      B.meth "loop" "(I)I"
        [
          B.Const 0;
          B.Istore 2;
          B.Label "top";
          B.Iload 1;
          B.If_z (I.Le, "done");
          B.Iload 2;
          B.Iload 1;
          B.Add;
          B.Istore 2;
          B.Inc (1, -1);
          B.Goto "top";
          B.Label "done";
          B.Iload 2;
          B.Ireturn;
        ];
    ]

let test_roundtrip_sample () =
  let cls = sample_class () in
  let bytes = Enc.class_to_bytes cls in
  let cls' = Dec.class_of_bytes bytes in
  check Alcotest.bool "roundtrip equal" true (cls = cls')

let test_roundtrip_invokeinterface () =
  let cls =
    B.class_ "IfaceUser"
      [
        B.meth ~flags:[ CF.Public; CF.Static ] "f" "(Ljava/lang/Object;)I"
          [
            B.Aload 0;
            B.Invokeinterface ("some/Iface", "m", "()I");
            B.Ireturn;
          ];
      ]
  in
  let cls' = Dec.class_of_bytes (Enc.class_to_bytes cls) in
  check Alcotest.bool "invokeinterface roundtrip" true (cls = cls')

let test_attributes_fast_path () =
  let cls = sample_class () in
  let bytes = Enc.class_to_bytes cls in
  check Alcotest.bool "fast path = full decode attributes" true
    (Dec.class_attributes_of_bytes bytes
    = (Dec.class_of_bytes bytes).CF.attributes);
  match Dec.class_attributes_of_bytes "garbage" with
  | _ -> fail "garbage accepted"
  | exception Dec.Format_error _ -> ()

let test_roundtrip_switch_and_jsr () =
  let cls =
    B.class_ "S"
      [
        B.meth ~flags:[ CF.Public; CF.Static ] "f" "(I)I"
          [
            B.Iload 0;
            B.Switch (0, [ "a"; "b" ], "dflt");
            B.Label "a";
            B.Const 100;
            B.Ireturn;
            B.Label "b";
            B.Jsr "sub";
            B.Const 200;
            B.Ireturn;
            B.Label "dflt";
            B.Const (-1);
            B.Ireturn;
            B.Label "sub";
            B.Astore 3;
            B.Ret 3;
          ];
      ]
  in
  let cls' = Dec.class_of_bytes (Enc.class_to_bytes cls) in
  check Alcotest.bool "switch/jsr roundtrip" true (cls = cls')

let test_decode_bad_magic () =
  match Dec.class_of_bytes "NOTACLASSFILE---" with
  | _ -> fail "bad magic accepted"
  | exception Dec.Format_error _ -> ()

let test_decode_truncated () =
  let bytes = Enc.class_to_bytes (sample_class ()) in
  for cut = 1 to 20 do
    let len = String.length bytes * cut / 21 in
    match Dec.class_of_bytes (String.sub bytes 0 len) with
    | _ -> fail (Printf.sprintf "truncation at %d accepted" len)
    | exception Dec.Format_error _ -> ()
  done

let test_decode_trailing_junk () =
  let bytes = Enc.class_to_bytes (sample_class ()) ^ "junk" in
  match Dec.class_of_bytes bytes with
  | _ -> fail "trailing junk accepted"
  | exception Dec.Format_error _ -> ()

let test_decode_misaligned_branch () =
  (* Encode a goto, then corrupt its target to point into the middle
     of an instruction. Goto encodes as [opcode; u4 offset]. *)
  let cls =
    B.class_ "M"
      [
        B.meth ~flags:[ CF.Public; CF.Static ] "f" "()V"
          [ B.Const 1; B.Pop; B.Goto "l"; B.Label "l"; B.Return ];
      ]
  in
  let bytes = Bytes.of_string (Enc.class_to_bytes cls) in
  (* Find the goto opcode (24) and nudge its 4-byte operand to an
     offset inside the iconst instruction (offset 1). *)
  let found = ref false in
  for i = 0 to Bytes.length bytes - 5 do
    if (not !found) && Bytes.get_uint8 bytes i = 24 then begin
      found := true;
      Bytes.set_uint8 bytes (i + 1) 0;
      Bytes.set_uint8 bytes (i + 2) 0;
      Bytes.set_uint8 bytes (i + 3) 0;
      Bytes.set_uint8 bytes (i + 4) 3
      (* byte 3 is inside the 5-byte iconst at offset 0 *)
    end
  done;
  check Alcotest.bool "found goto" true !found;
  match Dec.class_of_bytes (Bytes.to_string bytes) with
  | _ -> fail "misaligned branch accepted"
  | exception Dec.Format_error _ -> ()

let test_size_accounting () =
  let cls = sample_class () in
  check Alcotest.int "class_size = length"
    (String.length (Enc.class_to_bytes cls))
    (Enc.class_size cls);
  check Alcotest.bool "non-trivial" true (Enc.class_size cls > 100)

(* --- Writer overflow (regression). ---

   The u2/i2/str writers used to mask out-of-range values with [land
   0xff] per byte, silently corrupting any class whose pool, table or
   string outgrew a 16-bit field. They must raise [Overflow] instead. *)

let expect_overflow what f =
  match f () with
  | () -> fail (what ^ ": expected Overflow")
  | exception Bytecode.Io.Overflow _ -> ()

let test_writer_overflow () =
  let module W = Bytecode.Io.Writer in
  expect_overflow "u2 65536" (fun () -> W.u2 (W.create ()) 65536);
  expect_overflow "u2 negative" (fun () -> W.u2 (W.create ()) (-1));
  expect_overflow "i2 32768" (fun () -> W.i2 (W.create ()) 32768);
  expect_overflow "i2 -32769" (fun () -> W.i2 (W.create ()) (-32769));
  (* a length-prefixed string over 64 KiB - 1 *)
  expect_overflow "str 65536 bytes" (fun () ->
      W.str (W.create ()) (String.make 65536 'x'));
  (* boundary values still encode *)
  let w = W.create () in
  W.u2 w 65535;
  W.i2 w (-32768);
  W.i2 w 32767;
  W.str w (String.make 65535 'x');
  check Alcotest.int "boundary bytes" (2 + 2 + 2 + 2 + 65535)
    (String.length (W.contents w))

let test_encode_overwide_table () =
  (* A method whose locals outgrow the u2 max_locals field: the encoder
     must refuse the class rather than emit a truncated count. *)
  let cls = sample_class () in
  let cls =
    {
      cls with
      CF.methods =
        List.map
          (fun m ->
            match m.CF.m_code with
            | None -> m
            | Some c ->
              { m with CF.m_code = Some { c with CF.max_locals = 70_000 } })
          cls.CF.methods;
    }
  in
  expect_overflow "max_locals 70000" (fun () ->
      ignore (Enc.class_to_bytes cls))

(* --- Reader slice boundaries. ---

   [Reader.sub] readers share the parent's backing buffer; the
   interesting cases are the edges: empty slices, slices ending exactly
   at the parent's end, and slices of slices. *)

let test_reader_slice_boundaries () =
  let module R = Bytecode.Io.Reader in
  let r = R.of_string "\x00\x01\x02\x03\x04\x05\x06\x07" in
  (* empty slice: valid, immediately at end, parent not advanced past it *)
  let empty = R.sub r 0 in
  check Alcotest.bool "empty slice at_end" true (R.at_end empty);
  check Alcotest.int "empty slice pos" 0 (R.pos empty);
  (match R.u1 empty with
  | _ -> fail "read past empty slice"
  | exception Bytecode.Io.Truncated _ -> ());
  check Alcotest.int "parent pos unchanged" 0 (R.pos r);
  (* nested slices: positions are relative to each slice's start *)
  check Alcotest.int "parent u2" 0x0001 (R.u2 r);
  let outer = R.sub r 4 in
  check Alcotest.int "outer pos" 0 (R.pos outer);
  check Alcotest.int "outer u1" 2 (R.u1 outer);
  let inner = R.sub outer 2 in
  check Alcotest.int "inner pos" 0 (R.pos inner);
  check Alcotest.int "inner u2" 0x0304 (R.u2 inner);
  check Alcotest.bool "inner at_end" true (R.at_end inner);
  (* the outer slice advanced past the inner's bytes *)
  check Alcotest.int "outer u1 after inner" 5 (R.u1 outer);
  check Alcotest.bool "outer at_end" true (R.at_end outer);
  (match R.u1 outer with
  | _ -> fail "read past outer slice"
  | exception Bytecode.Io.Truncated _ -> ());
  (* slice ending exactly at the parent's end *)
  check Alcotest.int "parent resumes after slice" 6 (R.pos r);
  let tail = R.sub r 2 in
  check Alcotest.bool "parent at_end" true (R.at_end r);
  check Alcotest.int "tail u2" 0x0607 (R.u2 tail);
  check Alcotest.bool "tail at_end" true (R.at_end tail);
  (* a slice cannot extend past its parent's remaining bytes *)
  let r2 = R.of_string "ab" in
  match R.sub r2 3 with
  | _ -> fail "oversized slice accepted"
  | exception Bytecode.Io.Truncated _ -> ()

(* --- Disassembler smoke. --- *)

let test_disasm () =
  let s = Bytecode.Disasm.class_to_string (sample_class ()) in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "has class name" true (contains "com/example/Sample");
  check Alcotest.bool "has println ref" true (contains "println");
  check Alcotest.bool "has handler" true (contains "handler")

(* --- Property tests. --- *)

(* Generator of random but structurally valid classes: straight-line
   arithmetic bodies with occasional forward branches, always ending in
   return. *)
let gen_class =
  let open QCheck.Gen in
  let gen_name =
    map (fun n -> Printf.sprintf "gen/Class%d" n) (int_range 0 1000)
  in
  let gen_body =
    let* n = int_range 1 30 in
    let* ops =
      list_repeat n
        (oneof
           [
             return (B.Const 1);
             return (B.Const 42);
             map (fun k -> B.Const k) (int_range (-100) 100);
             return B.Dup;
             return (B.Push_str "s");
             return B.Pop;
           ])
    in
    (* Keep the stack non-empty at the end so we can return cleanly;
       pad with consts and end with Return. *)
    return ([ B.Const 0 ] @ ops @ [ B.Label "end"; B.Return ])
  in
  let* name = gen_name in
  let* nmeths = int_range 1 5 in
  let* bodies = list_repeat nmeths gen_body in
  let meths =
    List.mapi
      (fun i body ->
        B.meth
          ~flags:[ CF.Public; CF.Static ]
          (Printf.sprintf "m%d" i) "()V" body)
      bodies
  in
  let* nfields = int_range 0 4 in
  let fields =
    List.init nfields (fun i ->
        B.field (Printf.sprintf "f%d" i) (if i mod 2 = 0 then "I" else "[I"))
  in
  return (B.class_ name ~fields meths)

let arbitrary_class =
  QCheck.make ~print:(fun c -> Bytecode.Disasm.class_to_string c) gen_class

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:200 arbitrary_class
    (fun cls -> Dec.class_of_bytes (Enc.class_to_bytes cls) = cls)

let prop_attrs_fast_path =
  QCheck.Test.make ~name:"attributes-only decode agrees with full decode"
    ~count:200 arbitrary_class (fun cls ->
      let bytes = Enc.class_to_bytes cls in
      Dec.class_attributes_of_bytes bytes
      = (Dec.class_of_bytes bytes).CF.attributes)

let prop_size_matches =
  QCheck.Test.make ~name:"instr encoded_size consistent" ~count:200
    arbitrary_class (fun cls ->
      (* Sum of per-instruction sizes equals the encoded body length
         implied by a re-decode. *)
      let cls' = Dec.class_of_bytes (Enc.class_to_bytes cls) in
      List.for_all2
        (fun m m' ->
          match (m.CF.m_code, m'.CF.m_code) with
          | Some c, Some c' -> Array.length c.CF.instrs = Array.length c'.CF.instrs
          | None, None -> true
          | _ -> false)
        cls.CF.methods cls'.CF.methods)

let () =
  let qt =
    List.map QCheck_alcotest.to_alcotest
      [ prop_roundtrip; prop_size_matches; prop_attrs_fast_path ]
  in
  Alcotest.run "bytecode"
    [
      ( "descriptor",
        [
          Alcotest.test_case "roundtrip" `Quick test_descriptor_roundtrip;
          Alcotest.test_case "errors" `Quick test_descriptor_errors;
          Alcotest.test_case "slots" `Quick test_descriptor_slots;
        ] );
      ( "cp",
        [
          Alcotest.test_case "interning" `Quick test_cp_interning;
          Alcotest.test_case "of_pool" `Quick test_cp_of_pool_preserves_indices;
          Alcotest.test_case "errors" `Quick test_cp_errors;
        ] );
      ( "instr",
        [
          Alcotest.test_case "targets" `Quick test_instr_targets;
          Alcotest.test_case "successors" `Quick test_instr_successors;
        ] );
      ( "builder",
        [
          Alcotest.test_case "labels" `Quick test_builder_labels;
          Alcotest.test_case "duplicate label" `Quick
            test_builder_duplicate_label;
          Alcotest.test_case "unbound label" `Quick test_builder_unbound_label;
          Alcotest.test_case "max locals/stack" `Quick test_builder_max_locals;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip sample" `Quick test_roundtrip_sample;
          Alcotest.test_case "roundtrip switch/jsr" `Quick
            test_roundtrip_switch_and_jsr;
          Alcotest.test_case "roundtrip invokeinterface" `Quick
            test_roundtrip_invokeinterface;
          Alcotest.test_case "attributes fast path" `Quick
            test_attributes_fast_path;
          Alcotest.test_case "bad magic" `Quick test_decode_bad_magic;
          Alcotest.test_case "truncated" `Quick test_decode_truncated;
          Alcotest.test_case "trailing junk" `Quick test_decode_trailing_junk;
          Alcotest.test_case "misaligned branch" `Quick
            test_decode_misaligned_branch;
          Alcotest.test_case "size accounting" `Quick test_size_accounting;
        ] );
      ( "io",
        [
          Alcotest.test_case "writer overflow" `Quick test_writer_overflow;
          Alcotest.test_case "over-wide table" `Quick
            test_encode_overwide_table;
          Alcotest.test_case "reader slice boundaries" `Quick
            test_reader_slice_boundaries;
        ] );
      ("disasm", [ Alcotest.test_case "smoke" `Quick test_disasm ]);
      ("properties", qt);
    ]
