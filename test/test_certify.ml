(* Tests for the translation-validating rewrite certifier: legitimate
   rewriter output re-proves from its wire image alone; every class of
   targeted corruption (dropped checks, bypassing branch retargets,
   flipped first-trip guards, widened loop bounds, forged or re-aimed
   certificates) is killed by the static verifier or the certifier;
   the pipeline gate turns a rejection into the §3.1 replacement
   class; and the seeded mutation harness is deterministic with a
   pinned kill rate. *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile
module I = Bytecode.Instr
module Cert = Analysis.Certificate

let check = Alcotest.check
let fail = Alcotest.fail
let static = [ CF.Public; CF.Static ]

let policy =
  Security.Policy_xml.parse
    {|<policy default="allow">
        <operation permission="op.use" class="util/Op" method="use"/>
      </policy>|}

(* Two sequential protected calls: the rewriter guards the first with
   a live check and elides the second behind an availability
   certificate. *)
let seq_cls =
  B.class_ "cert/Seq"
    [
      B.meth ~flags:static "f" "()I"
        [
          B.Invokestatic ("util/Op", "use", "()V");
          B.Invokestatic ("util/Op", "use", "()V");
          B.Const 0;
          B.Ireturn;
        ];
    ]

(* A counted loop over a protected call: the rewriter hoists the check
   to the preheader and certifies the in-loop site as [Hoisted]. *)
let loop_cls =
  B.class_ "cert/Loop"
    [
      B.meth ~flags:static "f" "()I"
        [
          B.Const 3;
          B.Istore 1;
          B.Label "head";
          B.Iload 1;
          B.If_z (I.Le, "exit");
          B.Invokestatic ("util/Op", "use", "()V");
          B.Inc (1, -1);
          B.Goto "head";
          B.Label "exit";
          B.Const 0;
          B.Ireturn;
        ];
    ]

(* A branch aimed straight at a protected call: the patcher must
   redirect it through the inserted check block, and the certifier
   must notice when a mutant undoes that redirect. *)
let branch_cls =
  B.class_ "cert/Branch"
    [
      B.meth ~flags:static "f" "(I)I"
        [
          B.Iload 0;
          B.If_z (I.Ne, "use");
          B.Const 0;
          B.Ireturn;
          B.Label "use";
          B.Invokestatic ("util/Op", "use", "()V");
          B.Const 1;
          B.Ireturn;
        ];
    ]

(* Rewrite with certificate emission on, then round-trip through the
   encoder so the certifier judges the wire image, as the gate does. *)
let rewrite_with_cert cls =
  let certs = Cert.create_store () in
  let rw = Security.Rewriter.rewrite_class ~elide:true ~certs policy cls in
  let rw = Bytecode.Decode.class_of_bytes (Bytecode.Encode.class_to_bytes rw) in
  (rw, Cert.find certs rw.CF.name)

let expect_ok what (rw, cert) =
  match Security.Certifier.certify policy ?cert rw with
  | Ok s -> s
  | Error reasons ->
    fail
      (Printf.sprintf "%s rejected: %s" what
         (String.concat "; "
            (List.map Analysis.Certify.reason_to_string reasons)))

(* --- Legitimate output re-proves. --- *)

let test_accept_sequential_elision () =
  let rw, cert = rewrite_with_cert seq_cls in
  check Alcotest.bool "certificate emitted" true (cert <> None);
  let s = expect_ok "cert/Seq" (rw, cert) in
  check Alcotest.int "both sites validated" 2 s.Analysis.Certify.cs_sites;
  check Alcotest.int "first site has the live check" 1
    s.Analysis.Certify.cs_live;
  check Alcotest.int "second site certificate-backed" 1
    s.Analysis.Certify.cs_certified

let test_accept_hoisted_loop () =
  let rw, cert = rewrite_with_cert loop_cls in
  let s = expect_ok "cert/Loop" (rw, cert) in
  check Alcotest.int "loop site validated" 1 s.Analysis.Certify.cs_sites;
  check Alcotest.int "via a hoist certificate" 1 s.Analysis.Certify.cs_hoists

let test_accept_redirected_branch () =
  let rw, cert = rewrite_with_cert branch_cls in
  let s = expect_ok "cert/Branch" (rw, cert) in
  check Alcotest.int "site validated" 1 s.Analysis.Certify.cs_sites;
  check Alcotest.int "live check guards it" 1 s.Analysis.Certify.cs_live

(* --- A naked elision (no certificate) is rejected. --- *)

let test_reject_unjustified_elision () =
  let rw, _cert = rewrite_with_cert seq_cls in
  match Security.Certifier.certify policy rw with
  | Ok _ -> fail "elided site accepted without its certificate"
  | Error (r :: _) ->
    check Alcotest.bool "names the elision" true
      (let s = Analysis.Certify.reason_to_string r in
       String.length s > 0)
  | Error [] -> fail "empty reason list"

(* --- Every enumerable corruption is killed. The mutation operators
   cover dropped checks, bypass retargets, guard flips, widened
   bounds, forged support and re-aimed certificate sites; none may
   slip past both the verifier and the certifier. --- *)

let oracle =
  Verifier.Oracle.of_classes
    (Jvm.Bootlib.boot_classes () @ [ seq_cls; loop_cls; branch_cls ])

let killed (mu : Analysis.Mutate.mutant) =
  match Verifier.Static_verifier.verify ~oracle mu.Analysis.Mutate.mu_class with
  | Verifier.Static_verifier.Rejected _ -> true
  | Verifier.Static_verifier.Verified _ -> (
    match
      Security.Certifier.certify policy ?cert:mu.Analysis.Mutate.mu_cert
        mu.Analysis.Mutate.mu_class
    with
    | Error _ -> true
    | Ok _ -> false)

let test_all_candidates_killed () =
  let env = Security.Certifier.env policy in
  let seen_ops = Hashtbl.create 8 in
  List.iter
    (fun cls ->
      let rw, cert = rewrite_with_cert cls in
      let n = Analysis.Mutate.candidate_count ~env rw cert in
      check Alcotest.bool
        (rw.CF.name ^ " has mutation candidates")
        true (n > 0);
      (* [count >= n] draws every candidate. *)
      List.iter
        (fun (mu : Analysis.Mutate.mutant) ->
          let m = mu.Analysis.Mutate.mu_mutation in
          Hashtbl.replace seen_ops m.Analysis.Mutate.m_op ();
          if not (killed mu) then
            fail
              (Printf.sprintf "mutant survived: %s: %s" rw.CF.name
                 (Analysis.Mutate.mutation_to_string m)))
        (Analysis.Mutate.mutants ~env ~seed:1L ~count:n rw cert))
    [ seq_cls; loop_cls; branch_cls ];
  List.iter
    (fun op ->
      check Alcotest.bool
        ("operator exercised: " ^ Analysis.Mutate.op_to_string op)
        true
        (Hashtbl.mem seen_ops op))
    Analysis.Mutate.
      [ Drop_check; Swap_branch; Widen_bound; Retarget_entry; Forge_support;
        Move_site ]

(* --- The pipeline gate. --- *)

let test_gate_accepts_certified () =
  let certs = Cert.create_store () in
  let filters = [ Security.Rewriter.filter ~elide:true ~certs policy ] in
  let gate = Dvm.Certification.gate ~policy ~certs in
  let out =
    Proxy.Pipeline.run ~gate filters (Bytecode.Encode.class_to_bytes seq_cls)
  in
  check Alcotest.bool "accepted" true (out.Proxy.Pipeline.rejected = None);
  let served = Bytecode.Decode.class_of_bytes out.Proxy.Pipeline.out_bytes in
  check Alcotest.string "transformed class served" "cert/Seq" served.CF.name

let test_gate_rejection_is_error_class () =
  let certs = Cert.create_store () in
  let filters = [ Security.Rewriter.filter ~elide:true ~certs policy ] in
  (* A gate judging with an *empty* store sees the elisions but no
     certificates: §3.1 rejection. *)
  let empty = Cert.create_store () in
  let gate = Dvm.Certification.gate ~policy ~certs:empty in
  Telemetry.reset Telemetry.default;
  Telemetry.enable Telemetry.default;
  let out =
    Proxy.Pipeline.run ~gate filters (Bytecode.Encode.class_to_bytes seq_cls)
  in
  Telemetry.disable Telemetry.default;
  (match out.Proxy.Pipeline.rejected with
  | Some ("certify", reason) ->
    check Alcotest.bool "reason non-empty" true (String.length reason > 0)
  | Some (f, _) -> fail ("rejected by unexpected filter: " ^ f)
  | None -> fail "uncertified elision passed the gate");
  let served = Bytecode.Decode.class_of_bytes out.Proxy.Pipeline.out_bytes in
  check Alcotest.string "replacement keeps the class name" "cert/Seq"
    served.CF.name;
  check Alcotest.bool "replacement throws from <clinit>" true
    (CF.find_method served "<clinit>" "()V" <> None);
  check Alcotest.int64 "certify.fail counted" 1L
    (Telemetry.counter_value Telemetry.default "certify.fail")

(* --- Workload sweep and the seeded mutation harness. --- *)

let test_workloads_certify () =
  let rep = Dvm.Certification.certify_workloads ~small:true () in
  check Alcotest.int "no false rejections" 0
    (List.length rep.Dvm.Certification.rp_failures);
  check Alcotest.bool "sites were validated" true
    (rep.Dvm.Certification.rp_sites > 0);
  check Alcotest.bool "elisions are certificate-backed" true
    (rep.Dvm.Certification.rp_certified > 0)

let test_mutation_deterministic_and_killed () =
  let run () =
    Dvm.Certification.mutation_run ~small:true ~seed:20260808L ~count:1 ()
  in
  let r1 = run () and r2 = run () in
  let sig_of r =
    List.map
      (fun (m : Dvm.Certification.mutation_result) ->
        m.Dvm.Certification.mu_class ^ ": " ^ m.Dvm.Certification.mu_desc)
      r.Dvm.Certification.mt_results
  in
  check
    Alcotest.(list string)
    "pinned seed reproduces the mutant set" (sig_of r1) (sig_of r2);
  check Alcotest.bool "mutants generated" true
    (r1.Dvm.Certification.mt_mutants > 0);
  check Alcotest.bool "kill rate meets the bar" true
    (Dvm.Certification.kill_rate r1 >= 0.9)

let () =
  Alcotest.run "certify"
    [
      ( "accept",
        [
          Alcotest.test_case "sequential elision re-proves" `Quick
            test_accept_sequential_elision;
          Alcotest.test_case "hoisted loop re-proves" `Quick
            test_accept_hoisted_loop;
          Alcotest.test_case "redirected branch re-proves" `Quick
            test_accept_redirected_branch;
        ] );
      ( "reject",
        [
          Alcotest.test_case "unjustified elision" `Quick
            test_reject_unjustified_elision;
          Alcotest.test_case "every mutation candidate killed" `Quick
            test_all_candidates_killed;
        ] );
      ( "gate",
        [
          Alcotest.test_case "certified class passes" `Quick
            test_gate_accepts_certified;
          Alcotest.test_case "rejection serves the §3.1 class" `Quick
            test_gate_rejection_is_error_class;
        ] );
      ( "harness",
        [
          Alcotest.test_case "workloads certify clean" `Slow
            test_workloads_certify;
          Alcotest.test_case "seeded harness deterministic, kill rate pinned"
            `Slow test_mutation_deterministic_and_killed;
        ] );
    ]
