(* Acceptance tests for the overload-control layer, driven through
   the chaos harness: the goodput bar under the scripted 3x spike, the
   three chaos invariants, seed replayability, and the serve-stale
   brownout and hedging behaviours the sessions implement.

   The scenario is the pinned [default_config]: the simulation is
   deterministic, so these are exact assertions, not statistical
   ones. A smaller configuration is used where the full 40 s run is
   not needed. *)

let check = Alcotest.check
let fail = Alcotest.fail

(* One shared run of the acceptance configuration: the spike
   comparison and the invariant verdict both come from it. *)
let acceptance = lazy (Dvm.Chaos.spike_comparison Dvm.Chaos.default_config)
let verdict = lazy (Dvm.Chaos.verify Dvm.Chaos.default_config)

let test_goodput_bar () =
  let cmp = Lazy.force acceptance in
  Printf.printf "goodput: control %.0f B/s, baseline %.0f B/s (%.2fx)\n"
    cmp.Dvm.Chaos.cmp_control.Dvm.Chaos.co_goodput_bps
    cmp.Dvm.Chaos.cmp_baseline.Dvm.Chaos.co_goodput_bps
    cmp.Dvm.Chaos.cmp_goodput_ratio;
  check Alcotest.bool "overload control doubles goodput under the spike" true
    (cmp.Dvm.Chaos.cmp_goodput_ratio >= 2.0);
  (* the controls actually engaged: shedding, retries and breaker
     trips all fired during the spike *)
  let c = cmp.Dvm.Chaos.cmp_control in
  check Alcotest.bool "admission shed requests" true (c.Dvm.Chaos.co_shed > 0);
  check Alcotest.bool "clients retried" true (c.Dvm.Chaos.co_retries > 0);
  check Alcotest.bool "breakers tripped" true
    (c.Dvm.Chaos.co_breaker_trips > 0);
  check Alcotest.bool "hedges fired" true (c.Dvm.Chaos.co_hedges > 0);
  (* and the baseline had none of them *)
  let b = cmp.Dvm.Chaos.cmp_baseline in
  check Alcotest.int "baseline saw no shedding" 0 b.Dvm.Chaos.co_shed;
  check Alcotest.int "baseline never retried" 0 b.Dvm.Chaos.co_retries;
  check Alcotest.int "baseline never hedged" 0 b.Dvm.Chaos.co_hedges

let test_no_deadline_violations () =
  let cmp = Lazy.force acceptance in
  (* zero in BOTH arms: the client-side deadline drop is what makes
     "zero late serves" hold by construction, control or not *)
  check Alcotest.int "control never served past a deadline" 0
    cmp.Dvm.Chaos.cmp_control.Dvm.Chaos.co_deadline_violations;
  check Alcotest.int "baseline never served past a deadline" 0
    cmp.Dvm.Chaos.cmp_baseline.Dvm.Chaos.co_deadline_violations

let test_invariants_hold () =
  let v = Lazy.force verdict in
  check Alcotest.bool "served bytes digest-identical to fault-free run" true
    v.Dvm.Chaos.v_digests_ok;
  check Alcotest.bool "no serve outlived its deadline" true
    v.Dvm.Chaos.v_no_late_serves;
  check Alcotest.bool "throughput recovered after faults cleared" true
    v.Dvm.Chaos.v_recovered;
  check Alcotest.bool "verdict rolls up" true (Dvm.Chaos.ok v);
  (* the chaotic run was actually chaotic *)
  let c = v.Dvm.Chaos.v_chaotic in
  check Alcotest.bool "faults were injected" true
    (List.length c.Dvm.Chaos.co_fault_trace > 0);
  check Alcotest.bool "every applet key matches the reference digests" true
    (List.for_all
       (fun (k, d) ->
         match List.assoc_opt k v.Dvm.Chaos.v_reference.Dvm.Chaos.co_digests with
         | Some d' -> String.equal d d'
         | None -> true)
       c.Dvm.Chaos.co_digests)

(* A real class body for the session tests: the proxy pipeline parses
   whatever the origin serves, so the origin must serve a well-formed
   class. *)
let body =
  Bytecode.Encode.class_to_bytes
    (Bytecode.Builder.class_ "Hello"
       [
         Bytecode.Builder.meth
           ~flags:[ Bytecode.Classfile.Public; Bytecode.Classfile.Static ]
           "main" "()V"
           [ Bytecode.Builder.Return ];
       ])

let tiny_farm engine =
  let pool =
    Array.init 2 (fun i ->
        Proxy.create engine
          ~host_name:(Printf.sprintf "shard%d" i)
          ~origin:(fun _ -> Some body)
          ~origin_latency:(fun _ -> 0L)
          ~filters:[] ())
  in
  (Proxy.Farm.create engine pool, pool)

(* What the pipeline emits for [body]: fetch it once through a
   healthy farm so the stale-vs-fresh comparisons are exact. *)
let served_body =
  lazy
    (let engine = Simnet.Engine.create () in
     let farm, _ = tiny_farm engine in
     let got = ref None in
     Proxy.Farm.request farm ~cls:"probe/Body" (fun r -> got := Some r);
     Simnet.Engine.run engine;
     match !got with
     | Some (Proxy.Bytes b) -> b
     | _ -> failwith "tiny farm did not serve the probe")

(* A small configuration for the fast behavioural tests. *)
let small =
  {
    Dvm.Chaos.default_config with
    Dvm.Chaos.ch_clients = 12;
    ch_duration_s = 12;
    ch_spike_start_s = 3;
    ch_spike_len_s = 5;
    ch_crashes = 1;
    ch_loss_pct = 1.0;
  }

let test_seed_replayable () =
  let a = Dvm.Chaos.run small and b = Dvm.Chaos.run small in
  check Alcotest.string "engine traces digest-identical"
    a.Dvm.Chaos.co_trace_digest b.Dvm.Chaos.co_trace_digest;
  check
    (Alcotest.list Alcotest.string)
    "fault traces identical" a.Dvm.Chaos.co_fault_trace
    b.Dvm.Chaos.co_fault_trace;
  check Alcotest.bool "whole outcomes identical" true (a = b);
  let c = Dvm.Chaos.run { small with Dvm.Chaos.ch_seed = small.Dvm.Chaos.ch_seed + 1 } in
  check Alcotest.bool "a different seed diverges" false
    (String.equal a.Dvm.Chaos.co_trace_digest c.Dvm.Chaos.co_trace_digest)

let test_brownout_serves_stale () =
  (* All shards dead mid-run: sessions that have a fresh copy archived
     brown out to it instead of failing, and stale serves are counted
     apart from fresh ones. *)
  let engine = Simnet.Engine.create () in
  let farm, pool = tiny_farm engine in
  let session =
    Dvm.Client.Session.create ~budget_us:100_000L
      ~stale_key:Dvm.Chaos.stale_key engine farm
  in
  let got = ref [] in
  let fetch name at =
    Simnet.Engine.schedule_at engine at (fun () ->
        Dvm.Client.Session.fetch session ~cls:name (fun r ->
            got := (name, r) :: !got))
  in
  fetch "a0/one" 0L;
  Simnet.Engine.schedule_at engine 500_000L (fun () ->
      Array.iter (fun p -> Simnet.Host.crash p.Proxy.host) pool);
  fetch "a0/two" 1_000_000L;
  fetch "a9/never-seen" 1_000_000L;
  Simnet.Engine.run engine;
  (match List.assoc "a0/one" !got with
  | Dvm.Client.Session.Fresh b ->
    check Alcotest.string "fresh bytes" (Lazy.force served_body) b
  | _ -> fail "healthy farm did not serve fresh");
  (match List.assoc "a0/two" !got with
  | Dvm.Client.Session.Stale b ->
    check Alcotest.string "stale bytes are the archived fresh ones"
      (Lazy.force served_body) b
  | _ -> fail "dead farm did not brown out to stale");
  (match List.assoc "a9/never-seen" !got with
  | Dvm.Client.Session.Failed -> ()
  | _ -> fail "an applet never served fresh cannot brown out");
  check Alcotest.int "one stale serve counted" 1
    session.Dvm.Client.Session.stale_served;
  check Alcotest.int "one fresh serve counted" 1
    session.Dvm.Client.Session.served;
  check Alcotest.int "one failure counted" 1
    session.Dvm.Client.Session.failed

let test_hedge_wins_on_slow_owner () =
  (* The owner is alive but swamped; the hedge against the next shard
     in ring order comes back first and wins the fetch. *)
  let engine = Simnet.Engine.create () in
  let farm, pool = tiny_farm engine in
  let cls = "some/Applet" in
  let owner = Proxy.Farm.owner farm cls in
  (* swamp the owner with half a second of queued compute *)
  Simnet.Host.compute pool.(owner).Proxy.host ~cost_us:500_000L (fun () -> ());
  let session =
    Dvm.Client.Session.create ~budget_us:1_000_000L
      ~hedge_after_us:50_000L engine farm
  in
  let got = ref None in
  Dvm.Client.Session.fetch session ~cls (fun r -> got := Some r);
  Simnet.Engine.run engine;
  (match !got with
  | Some (Dvm.Client.Session.Fresh _) -> ()
  | _ -> fail "hedged fetch did not serve");
  check Alcotest.int "hedge fired" 1 session.Dvm.Client.Session.hedges;
  check Alcotest.int "hedge won" 1 session.Dvm.Client.Session.hedge_wins;
  check Alcotest.bool "fetch settled well before the swamped owner's queue"
    true
    (Int64.compare (Simnet.Engine.now engine) 500_000L < 0
    || session.Dvm.Client.Session.served = 1)

(* --- The control-plane scenario. --- *)

(* A small configuration for the fast control-plane tests. *)
let small_control =
  {
    Dvm.Chaos.default_control_config with
    Dvm.Chaos.cc_clients = 12;
    cc_duration_s = 18;
    cc_applets = 6;
    cc_bump_at_s = 7;
    cc_partitions = 1;
    cc_partition_len_s = 2;
  }

let test_control_invariants_hold () =
  let w = Dvm.Chaos.verify_control small_control in
  check Alcotest.bool "no serve under the revoked version" true
    w.Dvm.Chaos.w_no_revoked_serves;
  check Alcotest.bool "every shard converged" true w.Dvm.Chaos.w_converged;
  check Alcotest.bool "unaffected applets digest-identical" true
    w.Dvm.Chaos.w_digests_ok;
  check Alcotest.bool "verdict rolls up" true (Dvm.Chaos.control_ok w);
  let c = w.Dvm.Chaos.w_chaotic in
  (* the run actually exercised the machinery it claims to test *)
  check Alcotest.bool "bump committed" true (c.Dvm.Chaos.cn_commit_us > 0L);
  check Alcotest.bool "the bump changes some applets' bytes" true
    (List.length c.Dvm.Chaos.cn_changed_applets > 0);
  check Alcotest.bool "faults were injected" true
    (List.length c.Dvm.Chaos.cn_fault_trace > 0);
  check Alcotest.bool "fence refused some requests" true
    (c.Dvm.Chaos.cn_fence_rejects > 0);
  check Alcotest.bool "version stamps dropped stale entries" true
    (c.Dvm.Chaos.cn_stale_drops > 0);
  check Alcotest.bool "invalidations replicated and applied" true
    (c.Dvm.Chaos.cn_invalidations > 0);
  check Alcotest.bool "restarted shard resynced from the log" true
    (c.Dvm.Chaos.cn_resyncs > 0);
  (* the election machinery was genuinely attacked: the leader crash
     and the leader partition each force at least one hand-off *)
  check Alcotest.bool "single leader invariant sampled clean" true
    w.Dvm.Chaos.w_single_leader;
  check Alcotest.bool "snapshot catch-up = full-log replay" true
    w.Dvm.Chaos.w_replay_ok;
  check Alcotest.bool "leadership was re-elected after the crash" true
    (c.Dvm.Chaos.cn_elections >= 2);
  check Alcotest.bool "leadership changed identity" true
    (c.Dvm.Chaos.cn_leader_changes >= 2);
  check Alcotest.bool "the stale-term wake-up forced a stepdown" true
    (c.Dvm.Chaos.cn_stepdowns >= 1);
  check Alcotest.bool "an orphaned suffix was re-driven" true
    (c.Dvm.Chaos.cn_redrives >= 1);
  check Alcotest.bool "the log was compacted mid-run" true
    (c.Dvm.Chaos.cn_compactions >= 1);
  check Alcotest.bool "a laggard caught up from a snapshot" true
    (c.Dvm.Chaos.cn_snapshot_installs >= 1);
  check Alcotest.bool "never two leased leaders at a sampled instant" true
    (c.Dvm.Chaos.cn_max_leased <= 1);
  check Alcotest.int "terms never regressed" 0
    c.Dvm.Chaos.cn_term_regressions;
  (* changed applets really serve two distinct digest sets over the
     run (v1 before the bump, v2 after); unchanged ones serve one *)
  List.iter
    (fun (k, ds) ->
      let changed = List.mem k c.Dvm.Chaos.cn_changed_applets in
      check Alcotest.bool
        (Printf.sprintf "applet %s digest count (%s)" k
           (if changed then "changed" else "unchanged"))
        true
        (if changed then List.length ds = 2 else List.length ds = 1))
    c.Dvm.Chaos.cn_digests

let test_control_seed_replayable () =
  let a = Dvm.Chaos.run_control small_control
  and b = Dvm.Chaos.run_control small_control in
  check Alcotest.string "engine traces digest-identical"
    a.Dvm.Chaos.cn_trace_digest b.Dvm.Chaos.cn_trace_digest;
  check Alcotest.bool "whole outcomes identical" true (a = b)

let () =
  Alcotest.run "chaos"
    [
      ( "acceptance",
        [
          Alcotest.test_case "goodput bar (>= 2x)" `Quick test_goodput_bar;
          Alcotest.test_case "zero deadline violations" `Quick
            test_no_deadline_violations;
          Alcotest.test_case "three invariants" `Quick test_invariants_hold;
        ] );
      ( "replay",
        [ Alcotest.test_case "seed determinism" `Quick test_seed_replayable ] );
      ( "sessions",
        [
          Alcotest.test_case "serve-stale brownout" `Quick
            test_brownout_serves_stale;
          Alcotest.test_case "hedge wins on slow owner" `Quick
            test_hedge_wins_on_slow_owner;
        ] );
      ( "control-plane",
        [
          Alcotest.test_case "invariants hold" `Quick
            test_control_invariants_hold;
          Alcotest.test_case "seed determinism" `Quick
            test_control_seed_replayable;
        ] );
    ]
