(* Tests for MD5 and the code-signing service. *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile

let check = Alcotest.check
let fail = Alcotest.fail

(* RFC 1321 appendix A.5 test vectors. *)
let rfc_vectors =
  [
    ("", "d41d8cd98f00b204e9800998ecf8427e");
    ("a", "0cc175b9c0f1b6a831c399e269772661");
    ("abc", "900150983cd24fb0d6963f7d28e17f72");
    ("message digest", "f96b697d7cb7938d525a2f31aaf161d0");
    ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b");
    ( "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
      "d174ab98d277d9f5a5611c2c9f419d9f" );
    ( "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
      "57edf4a22be3c955ac49da2e2107b67a" );
  ]

let test_rfc_vectors () =
  List.iter
    (fun (input, expect) ->
      check Alcotest.string
        (Printf.sprintf "md5(%S)" input)
        expect (Dsig.Md5.hex_digest input))
    rfc_vectors

let test_block_boundaries () =
  (* Lengths around the 55/56/64-byte padding boundaries must not
     crash and must be distinct. *)
  let digests =
    List.map
      (fun n -> Dsig.Md5.hex_digest (String.make n 'x'))
      [ 54; 55; 56; 57; 63; 64; 65; 119; 120; 128 ]
  in
  check Alcotest.int "all distinct" (List.length digests)
    (List.length (List.sort_uniq String.compare digests))

(* The production digest routes through the runtime's C MD5; the
   from-the-spec implementation stays as the readable reference. They
   must agree bit for bit on arbitrary input. *)
let prop_md5_spec_agrees =
  QCheck.Test.make ~name:"md5 spec implementation agrees with digest" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_range 0 300))
    (fun s -> String.equal (Dsig.Md5.digest s) (Dsig.Md5.digest_spec s))

let prop_md5_deterministic =
  QCheck.Test.make ~name:"md5 deterministic, avalanche on 1 byte" ~count:200
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 1 200)) small_nat)
    (fun (s, i) ->
      let d1 = Dsig.Md5.digest s in
      let d2 = Dsig.Md5.digest s in
      let b = Bytes.of_string s in
      let pos = i mod Bytes.length b in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
      let d3 = Dsig.Md5.digest (Bytes.to_string b) in
      String.equal d1 d2 && not (String.equal d1 d3))

(* --- Signing. --- *)

let key = Dsig.Sign.make_key ~key_id:"org" ~secret:"s3cret-org-key"
let other_key = Dsig.Sign.make_key ~key_id:"org" ~secret:"different"

let sample =
  B.class_ "Signed"
    [ B.meth ~flags:[ CF.Public; CF.Static ] "f" "()I" [ B.Const 7; B.Ireturn ] ]

let test_sign_verify () =
  let signed = Dsig.Sign.sign key sample in
  check Alcotest.bool "valid" true (Dsig.Sign.verify [ key ] signed = Dsig.Sign.Valid);
  check Alcotest.bool "unsigned detected" true
    (Dsig.Sign.verify [ key ] sample = Dsig.Sign.Unsigned)

let test_tamper_detected () =
  let signed = Dsig.Sign.sign key sample in
  (* Change the method body after signing. *)
  let tampered =
    CF.map_methods
      (fun m ->
        match m.CF.m_code with
        | Some c ->
          {
            m with
            CF.m_code =
              Some { c with CF.instrs = [| Bytecode.Instr.Iconst 666l; Bytecode.Instr.Ireturn |] };
          }
        | None -> m)
      signed
  in
  check Alcotest.bool "tamper detected" true
    (Dsig.Sign.verify [ key ] tampered = Dsig.Sign.Bad_signature)

let test_wrong_key () =
  let signed = Dsig.Sign.sign key sample in
  check Alcotest.bool "wrong secret rejected" true
    (Dsig.Sign.verify [ other_key ] signed = Dsig.Sign.Bad_signature);
  let unknown = Dsig.Sign.make_key ~key_id:"elsewhere" ~secret:"x" in
  match Dsig.Sign.verify [ unknown ] signed with
  | Dsig.Sign.Unknown_key "org" -> ()
  | _ -> fail "unknown key not reported"

let test_sign_survives_roundtrip () =
  let signed = Dsig.Sign.sign key sample in
  let bytes = Bytecode.Encode.class_to_bytes signed in
  let back = Bytecode.Decode.class_of_bytes bytes in
  check Alcotest.bool "valid after encode/decode" true
    (Dsig.Sign.verify [ key ] back = Dsig.Sign.Valid)

let test_resign_replaces () =
  let signed = Dsig.Sign.sign key (Dsig.Sign.sign key sample) in
  (* double signing must not stack attributes *)
  check Alcotest.int "one signature attribute" 1
    (List.length
       (List.filter
          (fun (n, _) -> String.equal n Dsig.Sign.signature_attribute)
          signed.CF.attributes));
  check Alcotest.bool "still valid" true
    (Dsig.Sign.verify [ key ] signed = Dsig.Sign.Valid)

let () =
  Alcotest.run "dsig"
    [
      ( "md5",
        [
          Alcotest.test_case "rfc vectors" `Quick test_rfc_vectors;
          Alcotest.test_case "block boundaries" `Quick test_block_boundaries;
          QCheck_alcotest.to_alcotest prop_md5_deterministic;
          QCheck_alcotest.to_alcotest prop_md5_spec_agrees;
        ] );
      ( "sign",
        [
          Alcotest.test_case "sign/verify" `Quick test_sign_verify;
          Alcotest.test_case "tamper detected" `Quick test_tamper_detected;
          Alcotest.test_case "wrong key" `Quick test_wrong_key;
          Alcotest.test_case "survives roundtrip" `Quick
            test_sign_survives_roundtrip;
          Alcotest.test_case "re-sign replaces" `Quick test_resign_replaces;
        ] );
    ]
