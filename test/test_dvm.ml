(* Integration tests for the end-to-end DVM: the Figure 6 architecture
   comparison invariants, the security microbenchmark mechanics behind
   Figure 9, the Figure 10 scaling shape, and the full-system
   composition (client + proxy + services + console). *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile

let check = Alcotest.check
let fail = Alcotest.fail

(* One small app shared across the architecture tests. *)
let app = lazy (Workloads.Apps.build Workloads.Apps.jlex)

let results =
  lazy
    (List.map
       (fun arch -> (arch, Dvm.Experiment.run ~arch (Lazy.force app)))
       [
         Dvm.Experiment.Monolithic;
         Dvm.Experiment.Dvm { cached = false };
         Dvm.Experiment.Dvm { cached = true };
       ])

let find arch = List.assoc arch (Lazy.force results)

let test_outputs_identical_across_architectures () =
  match Lazy.force results with
  | (_, r0) :: rest ->
    List.iter
      (fun (_, r) ->
        check Alcotest.string "same output" r0.Dvm.Experiment.r_output
          r.Dvm.Experiment.r_output)
      rest;
    check Alcotest.bool "runs produced output" true
      (String.length r0.Dvm.Experiment.r_output > 0)
  | [] -> fail "no results"

let test_fig6_invariants () =
  let mono = find Dvm.Experiment.Monolithic in
  let uncached = find (Dvm.Experiment.Dvm { cached = false }) in
  let cached = find (Dvm.Experiment.Dvm { cached = true }) in
  let w r = Int64.to_float r.Dvm.Experiment.r_wall_us in
  (* First invocation under a DVM is slower (the paper: ~11% average);
     subsequent (cached) invocations are faster than monolithic. *)
  check Alcotest.bool "uncached DVM slower than monolithic" true
    (w uncached > w mono);
  check Alcotest.bool "overhead within 2-25%" true
    (let ov = (w uncached -. w mono) /. w mono in
     ov > 0.02 && ov < 0.25);
  check Alcotest.bool "cached DVM faster than monolithic" true
    (w cached < w mono);
  check Alcotest.bool "cached skips proxy work" true
    (Int64.compare cached.Dvm.Experiment.r_proxy_us
       uncached.Dvm.Experiment.r_proxy_us
    < 0)

let test_fig7_fig8_invariants () =
  let mono = find Dvm.Experiment.Monolithic in
  let dvm = find (Dvm.Experiment.Dvm { cached = false }) in
  (* The client-side verification work: all static checks on the
     monolithic client; only deferred link checks on the DVM client. *)
  check Alcotest.bool "monolithic does static checks on client" true
    (mono.Dvm.Experiment.r_static_checks > 10_000);
  check Alcotest.bool "DVM client does only dynamic checks" true
    (dvm.Dvm.Experiment.r_dynamic_checks > 0
    && dvm.Dvm.Experiment.r_dynamic_checks
       < mono.Dvm.Experiment.r_static_checks / 100)

let test_tampered_class_rejected_end_to_end () =
  (* Flip bytes in one class at the origin; the DVM client must either
     fail to load it or reject it — never execute corrupted code to a
     wrong answer silently. This exercises origin -> proxy -> verifier
     -> error class -> client. *)
  let app = Lazy.force app in
  let reference = (find Dvm.Experiment.Monolithic).Dvm.Experiment.r_output in
  let orig_origin = Workloads.Appgen.origin app in
  let victim =
    (* a worker class, not the entry point *)
    List.find
      (fun c ->
        c.CF.name <> app.Workloads.Appgen.entry
        && String.length c.CF.name > 6)
      app.Workloads.Appgen.classes
  in
  let corrupt bytes =
    let b = Bytes.of_string bytes in
    (* corrupt a code region byte deep in the file *)
    let pos = Bytes.length b * 3 / 4 in
    Bytes.set_uint8 b pos (Bytes.get_uint8 b pos lxor 0xff);
    Bytes.to_string b
  in
  let origin name =
    match orig_origin name with
    | Some bytes when String.equal name victim.CF.name -> Some (corrupt bytes)
    | other -> other
  in
  let oracle = Verifier.Oracle.of_classes (Jvm.Bootlib.boot_classes ()) in
  let engine = Simnet.Engine.create () in
  let proxy =
    Proxy.create engine ~origin
      ~origin_latency:(fun _ -> 0L)
      ~filters:[ Verifier.Static_verifier.filter ~oracle () ]
      ()
  in
  let vm = Jvm.Bootlib.fresh_vm ~provider:(Proxy.provider proxy) () in
  ignore (Verifier.Rt_verifier.install vm);
  match Jvm.Interp.run_main vm app.Workloads.Appgen.entry with
  | Ok () ->
    (* Only acceptable if the corruption was harmless: output must
       match the reference exactly. *)
    check Alcotest.string "harmless corruption" reference (Jvm.Vmstate.output vm)
  | Error v ->
    let cls = Jvm.Value.class_of v in
    check Alcotest.bool ("failure is a linkage error: " ^ cls) true
      (Jvm.Classreg.is_subclass vm.Jvm.Vmstate.reg ~sub:cls
         ~super:"java/lang/LinkageError")
  | exception Jvm.Vmstate.Runtime_fault msg ->
    fail ("corrupted code executed and faulted: " ^ msg)

(* --- Figure 9 mechanics. --- *)

let test_fig9_check_costs () =
  (* DVM: first check pays the policy download; later checks are cached
     lookups costing ~cost_cached_check. *)
  let policy =
    Security.Policy_xml.parse
      {|<policy default="deny">
          <domain name="d"><grant permission="property.get"/></domain>
        </policy>|}
  in
  let server = Security.Server.create policy in
  let vm = Jvm.Bootlib.fresh_vm () in
  let enf = Security.Enforcement.install vm ~server ~sid:"d" in
  let cost_before = vm.Jvm.Vmstate.native_cost in
  check Alcotest.bool "allowed" true
    (Security.Enforcement.allowed ~vm enf "property.get");
  let first = Int64.of_int (vm.Jvm.Vmstate.native_cost - cost_before) in
  let cost_before = vm.Jvm.Vmstate.native_cost in
  ignore (Security.Enforcement.allowed ~vm enf "property.get");
  let second = Int64.of_int (vm.Jvm.Vmstate.native_cost - cost_before) in
  check Alcotest.int64 "download cost" Security.Enforcement.cost_policy_download first;
  check Alcotest.int64 "cached cost" Security.Enforcement.cost_cached_check second;
  (* The DVM cached check is far cheaper than the JDK's stack
     introspection for file open (Figure 9's 300x case). *)
  check Alcotest.bool "300x cheaper than JDK openFile" true
    (Int64.to_int second * 300 <= Int64.to_int Dvm.Costs.jdk_overhead_open_file)

(* --- Figure 10 shape. --- *)

let test_fig10_shape () =
  let pts =
    Dvm.Scaling.sweep ~duration_s:15 [ 50; 150; 250; 300 ]
  in
  match pts with
  | [ p50; p150; p250; p300 ] ->
    let t p = p.Dvm.Scaling.throughput_bytes_per_s in
    check Alcotest.bool "throughput grows to 250" true
      (t p50 < t p150 && t p150 < t p250);
    check Alcotest.bool "roughly linear to 150" true
      (t p150 > 2.0 *. t p50);
    check Alcotest.bool "degrades past 250" true (t p300 < t p250);
    check Alcotest.bool "latency per KB roughly constant in range" true
      (p150.Dvm.Scaling.mean_latency_s_per_kb
       /. p50.Dvm.Scaling.mean_latency_s_per_kb
      < 2.0)
  | _ -> fail "sweep size"

(* --- Applet study sanity. --- *)

let test_applet_study () =
  let st = Dvm.Applet_study.run ~n:40 () in
  check Alcotest.bool "internet latency ~2.2s" true
    (st.Dvm.Applet_study.mean_internet_ms > 1_500.0
    && st.Dvm.Applet_study.mean_internet_ms < 3_500.0);
  check Alcotest.bool "large deviation" true
    (st.Dvm.Applet_study.stddev_internet_ms > st.Dvm.Applet_study.mean_internet_ms /. 2.0);
  check Alcotest.bool "uncached overhead small vs WAN" true
    (st.Dvm.Applet_study.overhead_percent < 15.0);
  check Alcotest.bool "cached much faster than internet" true
    (st.Dvm.Applet_study.mean_cached_ms
    < st.Dvm.Applet_study.mean_internet_ms /. 4.0)

(* --- Console-driven administration. --- *)

let test_banned_app_refused () =
  let console = Monitor.Console.create () in
  Monitor.Console.ban_app console ~app:"Hello" ~reason:"rogue" ~time:0L;
  let hello =
    B.class_ "Hello"
      [ B.meth ~flags:[ CF.Public; CF.Static ] "main" "()V" [ B.Return ] ]
  in
  let bytes = Bytecode.Encode.class_to_bytes hello in
  (* A DVM client loader consults the console's ban list. *)
  let provider name =
    match Monitor.Console.is_banned console name with
    | Some _ -> None
    | None -> if name = "Hello" then Some bytes else None
  in
  let vm = Jvm.Bootlib.fresh_vm ~provider () in
  match Jvm.Interp.run_main vm "Hello" with
  | Ok () -> fail "banned app ran"
  | Error v ->
    check Alcotest.string "refused" "java/lang/NoClassDefFoundError"
      (Jvm.Value.class_of v)

let () =
  Alcotest.run "dvm"
    [
      ( "architectures",
        [
          Alcotest.test_case "outputs identical" `Slow
            test_outputs_identical_across_architectures;
          Alcotest.test_case "fig6 invariants" `Slow test_fig6_invariants;
          Alcotest.test_case "fig7/fig8 invariants" `Slow
            test_fig7_fig8_invariants;
          Alcotest.test_case "tampered class rejected" `Slow
            test_tampered_class_rejected_end_to_end;
        ] );
      ( "security",
        [ Alcotest.test_case "fig9 check costs" `Quick test_fig9_check_costs ] );
      ( "scaling",
        [
          Alcotest.test_case "fig10 shape" `Slow test_fig10_shape;
          Alcotest.test_case "applet study" `Slow test_applet_study;
        ] );
      ( "administration",
        [ Alcotest.test_case "banned app refused" `Quick test_banned_app_refused ] );
    ]
