(* Tests for the sharded proxy farm: consistent-hash routing,
   ring-order failover, the shard-count-invariance and determinism
   guarantees, and the farm scaling experiment. *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile

let check = Alcotest.check
let fail = Alcotest.fail
let static = [ CF.Public; CF.Static ]

let hello =
  B.class_ "Hello"
    [
      B.meth ~flags:static "main" "()V"
        [
          B.Getstatic ("java/lang/System", "out", "Ljava/io/OutputStream;");
          B.Push_str "hi";
          B.Invokevirtual
            ("java/io/OutputStream", "println", "(Ljava/lang/String;)V");
          B.Return;
        ];
    ]

let hello_bytes = Bytecode.Encode.class_to_bytes hello

(* A farm whose origin serves the same class body under any name —
   routing tests care about who serves, not what. *)
let make_farm ?(shards = 4) ?(origin_latency_ms = 0) engine =
  let pool =
    Array.init shards (fun i ->
        Proxy.create engine
          ~host_name:(Printf.sprintf "shard%d" i)
          ~origin:(fun _ -> Some hello_bytes)
          ~origin_latency:(fun _ -> Simnet.Engine.ms origin_latency_ms)
          ~filters:[] ())
  in
  (Proxy.Farm.create engine pool, pool)

(* --- Routing. --- *)

let test_ring_routing () =
  let engine = Simnet.Engine.create () in
  let farm, _ = make_farm ~shards:4 engine in
  for i = 0 to 99 do
    let key = Printf.sprintf "a%d/c%d" i (i * 31) in
    let o = Proxy.Farm.owner farm key in
    check Alcotest.bool "owner in range" true (o >= 0 && o < 4);
    check Alcotest.int "owner stable" o (Proxy.Farm.owner farm key);
    match Proxy.Farm.preference_order farm key with
    | first :: _ as order ->
      check Alcotest.int "owner heads the preference order" o first;
      check
        (Alcotest.list Alcotest.int)
        "order is a permutation of the shards" [ 0; 1; 2; 3 ]
        (List.sort compare order)
    | [] -> fail "empty preference order"
  done;
  (* vnodes keep ownership balanced: no shard starves over 400 keys *)
  let counts = Array.make 4 0 in
  for i = 0 to 399 do
    let o = Proxy.Farm.owner farm (Printf.sprintf "b%d/x" i) in
    counts.(o) <- counts.(o) + 1
  done;
  Array.iteri
    (fun i c ->
      check Alcotest.bool
        (Printf.sprintf "shard %d owns a fair share (%d/400)" i c)
        true (c > 40))
    counts

let test_request_routes_to_owner () =
  let engine = Simnet.Engine.create () in
  let farm, pool = make_farm ~shards:4 engine in
  let cls = "some/Applet" in
  let o = Proxy.Farm.owner farm cls in
  let got = ref None in
  Proxy.Farm.request farm ~cls (fun r -> got := Some r);
  Simnet.Engine.run engine;
  (match !got with
  | Some (Proxy.Bytes _) -> ()
  | _ -> fail "owner did not serve");
  Array.iteri
    (fun i p ->
      check Alcotest.int
        (Printf.sprintf "shard %d request count" i)
        (if i = o then 1 else 0)
        p.Proxy.requests)
    pool;
  check Alcotest.int "no failover on the happy path" 0
    farm.Proxy.Farm.failovers

(* --- Failover. --- *)

let test_failover_walks_ring_and_returns () =
  let engine = Simnet.Engine.create () in
  let farm, pool = make_farm ~shards:4 engine in
  let cls = "some/Applet" in
  let order = Proxy.Farm.preference_order farm cls in
  let owner = List.nth order 0 and second = List.nth order 1 in
  Simnet.Host.crash pool.(owner).Proxy.host;
  let got = ref None in
  Proxy.Farm.request farm ~cls (fun r -> got := Some r);
  Simnet.Engine.run engine;
  (match !got with
  | Some (Proxy.Bytes _) -> ()
  | _ -> fail "secondary did not serve");
  check Alcotest.int "served by the next shard on the ring" 1
    pool.(second).Proxy.requests;
  check Alcotest.int "down owner untouched" 0 pool.(owner).Proxy.requests;
  check Alcotest.int "failover counted" 1 farm.Proxy.Farm.failovers;
  check Alcotest.bool "health view marks the owner down" false
    (Proxy.Farm.health farm).(owner);
  (* a restarted owner takes its keys back immediately *)
  Simnet.Host.restart pool.(owner).Proxy.host;
  Proxy.Farm.request farm ~cls (fun _ -> ());
  Simnet.Engine.run engine;
  check Alcotest.int "owner serves again after restart" 1
    pool.(owner).Proxy.requests;
  check Alcotest.int "no new failover" 1 farm.Proxy.Farm.failovers

let test_mid_flight_crash_fails_over () =
  let engine = Simnet.Engine.create () in
  let farm, pool = make_farm ~shards:3 ~origin_latency_ms:100 engine in
  let cls = "some/Applet" in
  let order = Proxy.Farm.preference_order farm cls in
  let owner = List.nth order 0 and second = List.nth order 1 in
  let got = ref None in
  Proxy.Farm.request farm ~cls (fun r -> got := Some r);
  (* crash the owner while its pipeline run occupies the CPU *)
  Simnet.Engine.schedule engine ~delay:100_200L (fun () ->
      Simnet.Host.crash pool.(owner).Proxy.host);
  Simnet.Engine.run engine;
  (match !got with
  | Some (Proxy.Bytes _) -> ()
  | _ -> fail "request lost in mid-flight crash");
  check Alcotest.int "handed to the next shard" 1 pool.(second).Proxy.requests;
  check Alcotest.int "failover counted" 1 farm.Proxy.Farm.failovers

let test_all_down_unavailable () =
  let engine = Simnet.Engine.create () in
  let farm, pool = make_farm ~shards:3 engine in
  Array.iter (fun p -> Simnet.Host.crash p.Proxy.host) pool;
  let got = ref None in
  Proxy.Farm.request farm ~cls:"some/Applet" (fun r -> got := Some r);
  Simnet.Engine.run engine;
  (match !got with
  | Some Proxy.Unavailable -> ()
  | _ -> fail "expected Unavailable with every shard down");
  check Alcotest.int "unavailable counted" 1 farm.Proxy.Farm.unavailable

(* --- Determinism and shard-count invariance. --- *)

let test_same_seed_same_trace () =
  let go () =
    Dvm.Scaling.run_farm ~duration_s:8 ~seed:11 ~clients:10 ~applet_count:5
      ~cache_capacity:(8 * 1024 * 1024) ~shards:3 ()
  in
  let p1 = go () and p2 = go () in
  check Alcotest.bool "trace digest nonempty" true
    (String.length p1.Dvm.Scaling.f_trace_digest > 0);
  check Alcotest.string "identical event traces under a fixed seed"
    p1.Dvm.Scaling.f_trace_digest p2.Dvm.Scaling.f_trace_digest;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "identical served digests" p1.Dvm.Scaling.f_served
    p2.Dvm.Scaling.f_served;
  check Alcotest.int "identical completion counts"
    p1.Dvm.Scaling.f_requests_completed p2.Dvm.Scaling.f_requests_completed

let test_shard_count_invariant_bytes () =
  (* The farm changes who does the work, never the work: the rewritten
     bytes served for each applet are identical whatever the shard
     count. (Shared popular workload so both configurations serve the
     same name set.) *)
  let go shards =
    Dvm.Scaling.run_farm ~duration_s:10 ~seed:5 ~clients:12 ~applet_count:6
      ~cache_capacity:(16 * 1024 * 1024) ~shards ()
  in
  let one = go 1 and three = go 3 in
  check Alcotest.bool "all applets served" true
    (List.length one.Dvm.Scaling.f_served = 6
    && List.length three.Dvm.Scaling.f_served = 6);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "served bytes identical across shard counts" one.Dvm.Scaling.f_served
    three.Dvm.Scaling.f_served

(* --- The scaling experiment. --- *)

let test_farm_scaling_past_the_knee () =
  (* Past a single proxy's memory knee, sharding divides the
     per-client state: aggregate throughput from 1 -> 4 shards must
     grow at least 3x (a small memory budget keeps the test quick;
     the regime is the same as 400 clients against 64 MB). *)
  let go shards =
    Dvm.Scaling.run_farm ~duration_s:8 ~seed:7 ~clients:48 ~applet_count:8
      ~mem_capacity:(4 * 1024 * 1024) ~shards ()
  in
  let one = go 1 and four = go 4 in
  check Alcotest.bool "one shard is thrashing" true
    (one.Dvm.Scaling.f_throughput_bytes_per_s > 0.0);
  let ratio =
    four.Dvm.Scaling.f_throughput_bytes_per_s
    /. one.Dvm.Scaling.f_throughput_bytes_per_s
  in
  check Alcotest.bool
    (Printf.sprintf "1 -> 4 shards scales >= 3x (got %.1fx)" ratio)
    true (ratio >= 3.0)

let test_coalescing_under_shared_load () =
  (* Shared popular workload: concurrent misses for the same class
     must coalesce (counter > 0) and the pipeline must run far fewer
     times than there are completions. Byte-identity of coalesced
     replies is enforced inside run_farm (divergence is fatal). *)
  let p =
    Dvm.Scaling.run_farm ~duration_s:8 ~seed:7 ~clients:40 ~applet_count:4
      ~cache_capacity:(16 * 1024 * 1024) ~shards:2 ()
  in
  check Alcotest.bool "requests coalesced" true (p.Dvm.Scaling.f_coalesced > 0);
  check Alcotest.bool "pipeline ran once per class" true
    (p.Dvm.Scaling.f_pipeline_runs <= 4);
  check Alcotest.bool "completions exceed pipeline runs" true
    (p.Dvm.Scaling.f_requests_completed > p.Dvm.Scaling.f_pipeline_runs)

(* --- Flapping: the probe/breaker hysteresis regression. ---

   A shard that alternates up/down faster than the probe interval used
   to flap the routing view on every probe: each crash marked it down,
   each restart marked it up, and keys bounced between owner and
   successor. The breaker's windowed failure count (successes reset
   the consecutive counter but not the window) opens after enough
   flaps, and [Farm.probe] then pins the shard out of rotation until a
   cooldown's worth of stable probes closes the breaker again. *)

let test_flapping_replica_stabilizes () =
  let engine = Simnet.Engine.create () in
  let farm, pool = make_farm ~shards:4 engine in
  let cls = "some/Applet" in
  let order = Proxy.Farm.preference_order farm cls in
  let owner = List.nth order 0 and second = List.nth order 1 in
  let flap_probe () =
    Simnet.Host.crash pool.(owner).Proxy.host;
    let down = Proxy.Farm.probe farm in
    Simnet.Host.restart pool.(owner).Proxy.host;
    let up = Proxy.Farm.probe farm in
    (down.(owner), up.(owner))
  in
  (* first flaps: the probe view follows the host, i.e. it flaps too *)
  let d1, u1 = flap_probe () in
  check Alcotest.bool "first crash probes down" false d1;
  check Alcotest.bool "first restart probes up" true u1;
  (* keep flapping: the windowed failures open the breaker, and the
     probe view stops following the flaps even while the host is up *)
  let _ = flap_probe () in
  let _ = flap_probe () in
  let _, u4 = flap_probe () in
  check Alcotest.bool "after repeated flaps the probe view pins down" false u4;
  check Alcotest.bool "breaker tripped" true
    (Proxy.Breaker.trips (Proxy.Farm.breaker farm owner) > 0);
  (* routing honours the open breaker: the owner is skipped without
     being touched, even though its host is up right now *)
  let before = pool.(owner).Proxy.requests in
  let got = ref None in
  Proxy.Farm.request farm ~cls (fun r -> got := Some r);
  Simnet.Engine.run engine;
  (match !got with
  | Some (Proxy.Bytes _) -> ()
  | _ -> fail "successor did not serve");
  check Alcotest.int "open breaker keeps traffic off the flapper" before
    pool.(owner).Proxy.requests;
  check Alcotest.bool "served by the successor" true
    (pool.(second).Proxy.requests > 0);
  check Alcotest.bool "breaker skip counted" true
    (farm.Proxy.Farm.breaker_skips > 0);
  (* after a cooldown of stable health, probes close the breaker and
     the owner takes its keys back *)
  Simnet.Engine.schedule engine ~delay:(Simnet.Engine.sec 10) (fun () -> ());
  Simnet.Engine.run engine;
  let p1 = Proxy.Farm.probe farm in
  let p2 = Proxy.Farm.probe farm in
  check Alcotest.bool "stable probes rehabilitate the shard" true
    (p1.(owner) || p2.(owner));
  let before = pool.(owner).Proxy.requests in
  Proxy.Farm.request farm ~cls (fun _ -> ());
  Simnet.Engine.run engine;
  check Alcotest.int "owner serves again after rehabilitation" (before + 1)
    pool.(owner).Proxy.requests

(* --- Cache versioning and invalidation. --- *)

let test_cache_versioned_entries () =
  let c = Proxy.Cache.create ~capacity:(1024 * 1024) in
  Proxy.Cache.store ~version:1 c "k" "body-v1";
  check
    (Alcotest.option Alcotest.string)
    "same version hits" (Some "body-v1")
    (Proxy.Cache.find ~version:1 c "k");
  check Alcotest.bool "same version mem" true
    (Proxy.Cache.mem ~version:1 c "k");
  check Alcotest.bool "other version mem is a miss" false
    (Proxy.Cache.mem ~version:2 c "k");
  (* a mismatched lookup is a miss AND drops the stale entry *)
  check
    (Alcotest.option Alcotest.string)
    "version mismatch misses" None
    (Proxy.Cache.find ~version:2 c "k");
  check Alcotest.int "stale entry dropped on sight" 1 c.Proxy.Cache.stale_drops;
  check
    (Alcotest.option Alcotest.string)
    "entry gone for its own version too" None
    (Proxy.Cache.find ~version:1 c "k");
  (* version 0 is unversioned: matches anything, both directions *)
  Proxy.Cache.store ~version:0 c "u" "body-u";
  check
    (Alcotest.option Alcotest.string)
    "unversioned entry serves any version" (Some "body-u")
    (Proxy.Cache.find ~version:7 c "u");
  Proxy.Cache.store ~version:3 c "w" "body-w";
  check
    (Alcotest.option Alcotest.string)
    "unversioned lookup accepts any entry" (Some "body-w")
    (Proxy.Cache.find c "w")

let test_cache_remove () =
  let c = Proxy.Cache.create ~capacity:(1024 * 1024) in
  Proxy.Cache.store c "a" "body-a";
  Proxy.Cache.store c "b" "body-b";
  check Alcotest.bool "remove hits" true (Proxy.Cache.remove c "a");
  check Alcotest.bool "removed key misses" false (Proxy.Cache.mem c "a");
  check Alcotest.bool "other keys untouched" true (Proxy.Cache.mem c "b");
  check Alcotest.bool "second remove is a miss" false (Proxy.Cache.remove c "a");
  check Alcotest.int "invalidations counted once" 1
    c.Proxy.Cache.invalidations;
  check Alcotest.int "used bytes released" (String.length "body-b")
    c.Proxy.Cache.used

(* Regression: a shard restarting cache-cold used to rewarm from the
   shared L2 and resurrect entries rewritten under a policy version
   the farm has since revoked. Entries are now stamped with the policy
   version; a mismatched rewarm is a miss that drops the stale entry
   and the pipeline re-runs under the current stack. *)
let test_l2_rewarm_respects_policy_version () =
  let engine = Simnet.Engine.create () in
  let l2 = Proxy.Cache.create ~capacity:(4 * 1024 * 1024) in
  let mark name =
    Rewrite.Filter.make ~name (fun cf ->
        {
          cf with
          Bytecode.Classfile.fields =
            B.field name "I" :: cf.Bytecode.Classfile.fields;
        })
  in
  let node version filters =
    let p =
      Proxy.create engine ~cache_capacity:(4 * 1024 * 1024) ~l2
        ~host_name:(Printf.sprintf "shard-v%d" version)
        ~origin:(fun _ -> Some hello_bytes)
        ~origin_latency:(fun _ -> 0L)
        ~filters ()
    in
    p.Proxy.policy_version <- version;
    p
  in
  let a = node 1 [ mark "m1" ] in
  let b = node 2 [ mark "m2" ] in
  let serve p =
    match Proxy.request_sync p ~cls:"some/Applet" with
    | Proxy.Bytes s -> s
    | _ -> fail "expected bytes"
  in
  (* shard A fills its L1 and the shared L2 under policy v1 *)
  let v1_bytes = serve a in
  check Alcotest.bool "L2 warmed by shard A" true
    (Proxy.Cache.mem ~version:1 l2 "some/Applet");
  (* shard B (already at v2, cache-cold — the restarted shard) must
     NOT serve A's v1 bytes out of the shared tier *)
  let v2_bytes = serve b in
  check Alcotest.bool "stacks genuinely differ" false
    (String.equal v1_bytes v2_bytes);
  check Alcotest.int "no L2 rewarm across versions" 0 b.Proxy.l2_hits;
  check Alcotest.bool "stale L2 entry dropped on sight" true
    (l2.Proxy.Cache.stale_drops > 0);
  check Alcotest.int "pipeline re-ran under the current stack" 1
    b.Proxy.pipeline_runs;
  (* same-version rewarm still works: a third v2 shard hits B's entry *)
  let c = node 2 [ mark "m2" ] in
  let v2_again = serve c in
  check Alcotest.string "same-version rewarm serves identical bytes" v2_bytes
    v2_again;
  check Alcotest.int "served from the shared tier" 1 c.Proxy.l2_hits;
  check Alcotest.int "no pipeline run on the rewarm" 0 c.Proxy.pipeline_runs

(* --- The control plane. --- *)

let make_control ?(members = 3) ?(lease_us = 1_000_000L)
    ?(hb_interval_us = 250_000L) ?(commit_margin_us = 100_000L)
    ?(snapshot_threshold = 8) engine =
  let ctl =
    Proxy.Control.create engine ~lease_us ~hb_interval_us ~commit_margin_us
      ~snapshot_threshold ()
  in
  let applied = Array.make members [] in
  let rigs =
    Array.init members (fun i ->
        let host =
          Simnet.Host.create engine ~name:(Printf.sprintf "m%d" i)
        in
        let link name =
          Simnet.Link.create engine
            ~name:(Printf.sprintf "%s-m%d" name i)
            ~bandwidth_bps:10_000_000 ~latency:(Simnet.Engine.us 500)
        in
        let lto = link "to" and lfrom = link "from" in
        let mid =
          Proxy.Control.add_member ctl ~name:(Printf.sprintf "m%d" i) ~host
            ~link_to:lto ~link_from:lfrom
            ~apply:(fun e -> applied.(i) <- e :: applied.(i))
        in
        (host, lto, lfrom, mid))
  in
  (ctl, rigs, applied)

let test_control_replicates_and_commits () =
  let engine = Simnet.Engine.create () in
  let ctl, rigs, applied = make_control ~members:3 engine in
  Proxy.Control.start ctl ~until:(Simnet.Engine.sec 10);
  Simnet.Engine.schedule_at engine (Simnet.Engine.sec 2) (fun () ->
      ignore (Proxy.Control.propose ctl (Proxy.Control.Set_version 2));
      ignore (Proxy.Control.propose ctl (Proxy.Control.Invalidate "a0/s")));
  Simnet.Engine.run ~until:(Simnet.Engine.sec 10) engine;
  check Alcotest.bool "converged" true (Proxy.Control.converged ctl);
  Array.iteri
    (fun i (_, _, _, mid) ->
      check Alcotest.int
        (Printf.sprintf "member %d applied the whole log" i)
        2
        (Proxy.Control.member_applied ctl mid);
      check Alcotest.int
        (Printf.sprintf "member %d at the new version" i)
        2
        (Proxy.Control.member_version ctl mid);
      check
        (Alcotest.list Alcotest.string)
        (Printf.sprintf "member %d applied in log order" i)
        [ "set-version 2"; "invalidate a0/s" ]
        (List.rev_map Proxy.Control.entry_to_string applied.(i)))
    rigs;
  check Alcotest.bool "all-acks commit beats the lease backstop" true
    (match Proxy.Control.commit_us ctl ~id:1 with
    | Some at -> at < Simnet.Engine.sec 3
    | None -> false);
  check Alcotest.int "committed version follows" 2
    (Proxy.Control.committed_version ctl)

let test_control_partition_fences_then_recovers () =
  let engine = Simnet.Engine.create () in
  let ctl, rigs, _ = make_control ~members:3 engine in
  let _, lto, lfrom, mid = rigs.(1) in
  Proxy.Control.start ctl ~until:(Simnet.Engine.sec 20);
  (* partition member 1's control links for 2..6 s; bump at 3 s *)
  Simnet.Engine.schedule_at engine (Simnet.Engine.sec 2) (fun () ->
      Simnet.Link.set_partitioned lto true;
      Simnet.Link.set_partitioned lfrom true);
  Simnet.Engine.schedule_at engine (Simnet.Engine.sec 3) (fun () ->
      ignore (Proxy.Control.propose ctl (Proxy.Control.Set_version 2)));
  (* by 3.5 s its lease (1 s, last renewed just before 2 s) is gone *)
  Simnet.Engine.schedule_at engine (Simnet.Engine.ms 3500) (fun () ->
      check Alcotest.bool "partitioned member is fenced" false
        (Proxy.Control.member_ok ctl mid);
      check Alcotest.bool "stale member has not applied the bump" true
        (Proxy.Control.member_version ctl mid < 2);
      check Alcotest.bool "bump not committed while a lease could be live"
        false
        (Proxy.Control.committed ctl ~id:1));
  (* the lease backstop: proposed at 3 s + 1 s lease + 100 ms margin.
     The entry commits then even though the partitioned member never
     acked — it is fenced, not waited on. *)
  Simnet.Engine.schedule_at engine (Simnet.Engine.ms 4200) (fun () ->
      check Alcotest.bool "bump committed at the lease backstop" true
        (Proxy.Control.committed ctl ~id:1));
  Simnet.Engine.schedule_at engine (Simnet.Engine.sec 6) (fun () ->
      Simnet.Link.set_partitioned lto false;
      Simnet.Link.set_partitioned lfrom false);
  Simnet.Engine.run ~until:(Simnet.Engine.sec 20) engine;
  check Alcotest.bool "healed member converges" true
    (Proxy.Control.converged ctl);
  check Alcotest.int "healed member reaches the new version" 2
    (Proxy.Control.member_version ctl mid);
  check Alcotest.bool "lease live again" true (Proxy.Control.member_ok ctl mid)

let test_control_restart_replays_log () =
  let engine = Simnet.Engine.create () in
  let ctl, rigs, applied = make_control ~members:2 engine in
  let host, _, _, mid = rigs.(1) in
  Proxy.Control.start ctl ~until:(Simnet.Engine.sec 12);
  Simnet.Engine.schedule_at engine (Simnet.Engine.sec 1) (fun () ->
      ignore (Proxy.Control.propose ctl (Proxy.Control.Set_version 2));
      ignore (Proxy.Control.propose ctl (Proxy.Control.Invalidate "a1/s")));
  (* crash at 3 s, restart at 5 s having lost all volatile state *)
  Simnet.Engine.schedule_at engine (Simnet.Engine.sec 3) (fun () ->
      Simnet.Host.crash host);
  Simnet.Engine.schedule_at engine (Simnet.Engine.sec 5) (fun () ->
      Simnet.Host.restart host;
      applied.(1) <- [];
      Proxy.Control.mark_restarted ctl mid;
      check Alcotest.bool "restarted member fenced until resync" false
        (Proxy.Control.member_ok ctl mid));
  Simnet.Engine.run ~until:(Simnet.Engine.sec 12) engine;
  check Alcotest.bool "recovered member converges" true
    (Proxy.Control.converged ctl);
  check
    (Alcotest.list Alcotest.string)
    "full log replayed in order after the restart"
    [ "set-version 2"; "invalidate a1/s" ]
    (List.rev_map Proxy.Control.entry_to_string applied.(1));
  check Alcotest.bool "resync counted" true
    (Proxy.Control.member_resyncs ctl mid >= 1);
  check Alcotest.bool "lease granted only after full replay" true
    (Proxy.Control.member_ok ctl mid)

(* With elections in play [propose] returns [None] while no leader
   holds a valid lease, and an entry accepted by a leader that dies
   before replicating it is legitimately lost — so callers that need
   an outcome re-propose. Both helpers re-propose the same content,
   which is safe because entries are idempotent joins. *)
let rec propose_retrying engine ctl entry =
  match Proxy.Control.propose ctl entry with
  | Some _ -> ()
  | None ->
    Simnet.Engine.schedule engine ~delay:200_000L (fun () ->
        propose_retrying engine ctl entry)

(* Re-propose [Set_version v] until it actually commits — immune to
   leader deaths that lose an accepted-but-uncommitted bump. *)
let rec ensure_version engine ctl v () =
  if Proxy.Control.committed_version ctl < v then begin
    ignore (Proxy.Control.propose ctl (Proxy.Control.Set_version v));
    Simnet.Engine.schedule engine ~delay:300_000L (ensure_version engine ctl v)
  end

let test_control_leader_crash_hands_off () =
  let engine = Simnet.Engine.create () in
  let ctl, rigs, _ = make_control ~members:3 engine in
  let host0, _, _, mid0 = rigs.(0) in
  let _, l2to, l2from, _ = rigs.(2) in
  (* member 2 is partitioned across the proposal so the all-acks arm
     cannot fire — only the fence backstop could commit, and the
     leader dies first *)
  Proxy.Control.start ctl ~until:(Simnet.Engine.sec 12);
  Simnet.Engine.schedule_at engine (Simnet.Engine.ms 1900) (fun () ->
      Simnet.Link.set_partitioned l2to true;
      Simnet.Link.set_partitioned l2from true);
  (* the bump lands at the bootstrap leader (member 0) and replicates
     to member 1 on the same tick... *)
  Simnet.Engine.schedule_at engine (Simnet.Engine.sec 2) (fun () ->
      check (Alcotest.option Alcotest.int) "member 0 won the bootstrap"
        (Some 0) (Proxy.Control.leader ctl);
      propose_retrying engine ctl (Proxy.Control.Set_version 2);
      propose_retrying engine ctl (Proxy.Control.Invalidate "a0/s"));
  (* ...then the leader dies mid-commit: majority-acked, but neither
     the all-acks arm nor the fence has fired *)
  Simnet.Engine.schedule_at engine (Simnet.Engine.ms 2500) (fun () ->
      check Alcotest.bool "entries not committed at the crash" false
        (Proxy.Control.committed ctl ~id:1);
      Simnet.Host.crash host0);
  Simnet.Engine.schedule_at engine (Simnet.Engine.ms 2600) (fun () ->
      Simnet.Link.set_partitioned l2to false;
      Simnet.Link.set_partitioned l2from false);
  (* member 1 campaigns once its election timeout expires, wins with
     member 2's vote (the election restriction favors its longer log),
     re-drives the orphaned suffix under its own term, and the fence
     backstop commits it. *)
  Simnet.Engine.schedule_at engine (Simnet.Engine.ms 5500) (fun () ->
      check (Alcotest.option Alcotest.int) "member 1 took over" (Some 1)
        (Proxy.Control.leader ctl);
      check Alcotest.bool "re-driven suffix committed under the new term"
        true
        (Proxy.Control.committed ctl ~id:1);
      check Alcotest.int "new version committed" 2
        (Proxy.Control.committed_version ctl));
  Simnet.Engine.schedule_at engine (Simnet.Engine.sec 6) (fun () ->
      Simnet.Host.restart host0;
      Proxy.Control.mark_restarted ctl mid0);
  Simnet.Engine.run ~until:(Simnet.Engine.sec 12) engine;
  check Alcotest.bool "plane converged after the hand-off" true
    (Proxy.Control.converged ctl);
  check Alcotest.bool "a hand-off election happened" true
    (Proxy.Control.elections ctl >= 2);
  check Alcotest.bool "leadership changed identity" true
    (Proxy.Control.leader_changes ctl >= 2);
  check Alcotest.bool "the orphaned suffix was re-driven" true
    (Proxy.Control.redrives ctl >= 1);
  check Alcotest.string "old leader rejoined as a follower" "follower"
    (Proxy.Control.member_role ctl mid0);
  Array.iter
    (fun (_, _, _, mid) ->
      check Alcotest.int "every member at the committed version" 2
        (Proxy.Control.member_version ctl mid);
      check Alcotest.string "state digests identical to full replay"
        (Proxy.Control.replay_digest ctl)
        (Proxy.Control.member_state_digest ctl mid))
    rigs

let test_control_snapshot_catch_up () =
  let engine = Simnet.Engine.create () in
  let ctl, rigs, applied =
    make_control ~members:3 ~snapshot_threshold:4 engine
  in
  let host2, _, _, mid2 = rigs.(2) in
  Proxy.Control.start ctl ~until:(Simnet.Engine.sec 16);
  Simnet.Engine.schedule_at engine (Simnet.Engine.sec 1)
    (ensure_version engine ctl 2);
  (* a cycling invalidation stream: 12 entries over four distinct
     keys, so the fold dedups aggressively *)
  for i = 0 to 11 do
    Simnet.Engine.schedule_at engine
      (Simnet.Engine.ms (1500 + (500 * i)))
      (fun () ->
        propose_retrying engine ctl
          (Proxy.Control.Invalidate (Printf.sprintf "a%d/s" (i mod 4))))
  done;
  (* member 2 is dead from 2 s to 10 s — across several folds *)
  Simnet.Engine.schedule_at engine (Simnet.Engine.sec 2) (fun () ->
      Simnet.Host.crash host2);
  Simnet.Engine.schedule_at engine (Simnet.Engine.sec 10) (fun () ->
      Simnet.Host.restart host2;
      applied.(2) <- [];
      Proxy.Control.mark_restarted ctl mid2);
  Simnet.Engine.run ~until:(Simnet.Engine.sec 16) engine;
  check Alcotest.bool "plane converged" true (Proxy.Control.converged ctl);
  check Alcotest.bool "the log was compacted" true
    (Proxy.Control.compactions ctl > 0);
  check Alcotest.bool "the rejoiner caught up from a snapshot" true
    (Proxy.Control.member_snapshot_installs ctl mid2 >= 1);
  check Alcotest.bool "the rejoiner is behind the leader's fold" true
    (Proxy.Control.member_snapshot_index ctl mid2 > 0);
  (* byte-identical to full-log replay — and to the member that DID
     apply the whole history entry by entry *)
  let _, _, _, mid0 = rigs.(0) in
  check Alcotest.string "snapshot catch-up state = full-log replay"
    (Proxy.Control.replay_digest ctl)
    (Proxy.Control.member_state_digest ctl mid2);
  check Alcotest.string "snapshot catch-up state = entry-by-entry state"
    (Proxy.Control.member_state_digest ctl mid0)
    (Proxy.Control.member_state_digest ctl mid2);
  (* the catch-up stream the rejoiner re-applied is the *fold*, not
     history: strictly fewer applies than committed entries *)
  check Alcotest.bool "caught up from the fold, not from history" true
    (List.length applied.(2) < Proxy.Control.log_length ctl)

(* Convergence property: whatever partition windows the seed throws at
   the members' control links, once every window has healed the plane
   converges — every member applies the authoritative log and agrees
   on the committed version, which reaches every bump that was driven
   to commitment. Windows all end by 8 s; the run goes to 20 s,
   leaving well over an election timeout + lease of healed time. *)
let prop_control_converges_after_partitions =
  let gen =
    QCheck.Gen.(
      let* members = int_range 2 4 in
      let* bumps = int_range 1 3 in
      let* windows =
        list_size (int_range 0 6)
          (triple (int_range 0 (members - 1)) (int_range 0 6_000)
             (int_range 1 2_000))
      in
      return (members, bumps, windows))
  in
  let print (members, bumps, windows) =
    Printf.sprintf "members=%d bumps=%d windows=[%s]" members bumps
      (String.concat ";"
         (List.map
            (fun (m, at, len) -> Printf.sprintf "m%d@%dms+%dms" m at len)
            windows))
  in
  QCheck.Test.make ~count:60
    ~name:"control plane converges to one version after any partition \
           schedule heals"
    (QCheck.make gen ~print)
    (fun (members, bumps, windows) ->
      let engine = Simnet.Engine.create () in
      let ctl, rigs, _ = make_control ~members engine in
      Proxy.Control.start ctl ~until:(Simnet.Engine.sec 20);
      List.iter
        (fun (m, at_ms, len_ms) ->
          let _, lto, lfrom, _ = rigs.(m) in
          Simnet.Engine.schedule_at engine (Simnet.Engine.ms at_ms) (fun () ->
              Simnet.Link.set_partitioned lto true;
              Simnet.Link.set_partitioned lfrom true);
          Simnet.Engine.schedule_at engine
            (Simnet.Engine.ms (at_ms + len_ms))
            (fun () ->
              Simnet.Link.set_partitioned lto false;
              Simnet.Link.set_partitioned lfrom false))
        windows;
      for b = 1 to bumps do
        Simnet.Engine.schedule_at engine
          (Simnet.Engine.ms (1000 * b))
          (fun () ->
            ensure_version engine ctl (b + 1) ();
            propose_retrying engine ctl
              (Proxy.Control.Invalidate (Printf.sprintf "a%d/s" b)))
      done;
      Simnet.Engine.run ~until:(Simnet.Engine.sec 20) engine;
      let target = bumps + 1 in
      Proxy.Control.converged ctl
      && Proxy.Control.committed_version ctl = target
      && Array.for_all
           (fun (_, _, _, mid) ->
             Proxy.Control.member_version ctl mid = target
             && String.equal
                  (Proxy.Control.member_state_digest ctl mid)
                  (Proxy.Control.replay_digest ctl))
           rigs)

(* Election safety: across arbitrary crash/partition/heal schedules,
   never two valid leadership leases at one sampled instant, and
   per-member terms never regress — not even transiently, not even
   while nothing can be elected at all. Sampled every 100 ms of
   virtual time for 15 s. *)
let prop_control_election_safety =
  let gen =
    QCheck.Gen.(
      let* members = int_range 3 5 in
      let* crashes =
        list_size (int_range 0 2)
          (triple
             (int_range 0 (members - 1))
             (int_range 500 8_000) (int_range 300 4_000))
      in
      let* windows =
        list_size (int_range 0 5)
          (triple (int_range 0 (members - 1)) (int_range 0 9_000)
             (int_range 1 3_000))
      in
      return (members, crashes, windows))
  in
  let print (members, crashes, windows) =
    Printf.sprintf "members=%d crashes=[%s] windows=[%s]" members
      (String.concat ";"
         (List.map
            (fun (m, at, len) -> Printf.sprintf "m%d@%dms+%dms" m at len)
            crashes))
      (String.concat ";"
         (List.map
            (fun (m, at, len) -> Printf.sprintf "m%d@%dms+%dms" m at len)
            windows))
  in
  QCheck.Test.make ~count:60
    ~name:"election safety: at most one leased leader per instant, terms \
           monotone"
    (QCheck.make gen ~print)
    (fun (members, crashes, windows) ->
      let engine = Simnet.Engine.create () in
      let ctl, rigs, _ = make_control ~members engine in
      Proxy.Control.start ctl ~until:(Simnet.Engine.sec 15);
      (* at most one crash window per member, so a crash never lands
         on an already-down host *)
      let crashed = Array.make members false in
      List.iter
        (fun (m, at_ms, len_ms) ->
          if not crashed.(m) then begin
            crashed.(m) <- true;
            let host, _, _, mid = rigs.(m) in
            Simnet.Engine.schedule_at engine (Simnet.Engine.ms at_ms)
              (fun () -> Simnet.Host.crash host);
            Simnet.Engine.schedule_at engine
              (Simnet.Engine.ms (at_ms + len_ms))
              (fun () ->
                Simnet.Host.restart host;
                Proxy.Control.mark_restarted ctl mid)
          end)
        crashes;
      List.iter
        (fun (m, at_ms, len_ms) ->
          let _, lto, lfrom, _ = rigs.(m) in
          Simnet.Engine.schedule_at engine (Simnet.Engine.ms at_ms) (fun () ->
              Simnet.Link.set_partitioned lto true;
              Simnet.Link.set_partitioned lfrom true);
          Simnet.Engine.schedule_at engine
            (Simnet.Engine.ms (at_ms + len_ms))
            (fun () ->
              Simnet.Link.set_partitioned lto false;
              Simnet.Link.set_partitioned lfrom false))
        windows;
      Simnet.Engine.schedule_at engine (Simnet.Engine.sec 1) (fun () ->
          propose_retrying engine ctl (Proxy.Control.Set_version 2));
      let violations = ref 0 in
      let last_terms = Array.make members 0 in
      let rec probe at =
        if Int64.compare at (Simnet.Engine.sec 15) <= 0 then
          Simnet.Engine.schedule_at engine at (fun () ->
              if List.length (Proxy.Control.leased_leaders ctl) > 1 then
                incr violations;
              Array.iteri
                (fun i (_, _, _, mid) ->
                  let tm = Proxy.Control.member_term ctl mid in
                  if tm < last_terms.(i) then incr violations;
                  last_terms.(i) <- tm)
                rigs;
              probe (Int64.add at 100_000L))
      in
      probe 0L;
      Simnet.Engine.run ~until:(Simnet.Engine.sec 15) engine;
      !violations = 0)

let () =
  Alcotest.run "farm"
    [
      ( "routing",
        [
          Alcotest.test_case "ring ownership" `Quick test_ring_routing;
          Alcotest.test_case "routes to owner" `Quick
            test_request_routes_to_owner;
        ] );
      ( "failover",
        [
          Alcotest.test_case "walks ring and returns" `Quick
            test_failover_walks_ring_and_returns;
          Alcotest.test_case "mid-flight crash" `Quick
            test_mid_flight_crash_fails_over;
          Alcotest.test_case "all shards down" `Quick test_all_down_unavailable;
          Alcotest.test_case "flapping replica stabilizes" `Quick
            test_flapping_replica_stabilizes;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same trace" `Quick
            test_same_seed_same_trace;
          Alcotest.test_case "shard-count-invariant bytes" `Quick
            test_shard_count_invariant_bytes;
        ] );
      ( "scaling",
        [
          Alcotest.test_case "3x past the knee" `Quick
            test_farm_scaling_past_the_knee;
          Alcotest.test_case "coalescing under shared load" `Quick
            test_coalescing_under_shared_load;
        ] );
      ( "cache-versioning",
        [
          Alcotest.test_case "versioned entries" `Quick
            test_cache_versioned_entries;
          Alcotest.test_case "remove" `Quick test_cache_remove;
          Alcotest.test_case "L2 rewarm respects policy version" `Quick
            test_l2_rewarm_respects_policy_version;
        ] );
      ( "control",
        [
          Alcotest.test_case "replicates and commits" `Quick
            test_control_replicates_and_commits;
          Alcotest.test_case "partition fences then recovers" `Quick
            test_control_partition_fences_then_recovers;
          Alcotest.test_case "restart replays the log" `Quick
            test_control_restart_replays_log;
          Alcotest.test_case "leader crash hands off" `Quick
            test_control_leader_crash_hands_off;
          Alcotest.test_case "snapshot catch-up" `Quick
            test_control_snapshot_catch_up;
          QCheck_alcotest.to_alcotest prop_control_converges_after_partitions;
          QCheck_alcotest.to_alcotest prop_control_election_safety;
        ] );
    ]
