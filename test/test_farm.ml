(* Tests for the sharded proxy farm: consistent-hash routing,
   ring-order failover, the shard-count-invariance and determinism
   guarantees, and the farm scaling experiment. *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile

let check = Alcotest.check
let fail = Alcotest.fail
let static = [ CF.Public; CF.Static ]

let hello =
  B.class_ "Hello"
    [
      B.meth ~flags:static "main" "()V"
        [
          B.Getstatic ("java/lang/System", "out", "Ljava/io/OutputStream;");
          B.Push_str "hi";
          B.Invokevirtual
            ("java/io/OutputStream", "println", "(Ljava/lang/String;)V");
          B.Return;
        ];
    ]

let hello_bytes = Bytecode.Encode.class_to_bytes hello

(* A farm whose origin serves the same class body under any name —
   routing tests care about who serves, not what. *)
let make_farm ?(shards = 4) ?(origin_latency_ms = 0) engine =
  let pool =
    Array.init shards (fun i ->
        Proxy.create engine
          ~host_name:(Printf.sprintf "shard%d" i)
          ~origin:(fun _ -> Some hello_bytes)
          ~origin_latency:(fun _ -> Simnet.Engine.ms origin_latency_ms)
          ~filters:[] ())
  in
  (Proxy.Farm.create engine pool, pool)

(* --- Routing. --- *)

let test_ring_routing () =
  let engine = Simnet.Engine.create () in
  let farm, _ = make_farm ~shards:4 engine in
  for i = 0 to 99 do
    let key = Printf.sprintf "a%d/c%d" i (i * 31) in
    let o = Proxy.Farm.owner farm key in
    check Alcotest.bool "owner in range" true (o >= 0 && o < 4);
    check Alcotest.int "owner stable" o (Proxy.Farm.owner farm key);
    match Proxy.Farm.preference_order farm key with
    | first :: _ as order ->
      check Alcotest.int "owner heads the preference order" o first;
      check
        (Alcotest.list Alcotest.int)
        "order is a permutation of the shards" [ 0; 1; 2; 3 ]
        (List.sort compare order)
    | [] -> fail "empty preference order"
  done;
  (* vnodes keep ownership balanced: no shard starves over 400 keys *)
  let counts = Array.make 4 0 in
  for i = 0 to 399 do
    let o = Proxy.Farm.owner farm (Printf.sprintf "b%d/x" i) in
    counts.(o) <- counts.(o) + 1
  done;
  Array.iteri
    (fun i c ->
      check Alcotest.bool
        (Printf.sprintf "shard %d owns a fair share (%d/400)" i c)
        true (c > 40))
    counts

let test_request_routes_to_owner () =
  let engine = Simnet.Engine.create () in
  let farm, pool = make_farm ~shards:4 engine in
  let cls = "some/Applet" in
  let o = Proxy.Farm.owner farm cls in
  let got = ref None in
  Proxy.Farm.request farm ~cls (fun r -> got := Some r);
  Simnet.Engine.run engine;
  (match !got with
  | Some (Proxy.Bytes _) -> ()
  | _ -> fail "owner did not serve");
  Array.iteri
    (fun i p ->
      check Alcotest.int
        (Printf.sprintf "shard %d request count" i)
        (if i = o then 1 else 0)
        p.Proxy.requests)
    pool;
  check Alcotest.int "no failover on the happy path" 0
    farm.Proxy.Farm.failovers

(* --- Failover. --- *)

let test_failover_walks_ring_and_returns () =
  let engine = Simnet.Engine.create () in
  let farm, pool = make_farm ~shards:4 engine in
  let cls = "some/Applet" in
  let order = Proxy.Farm.preference_order farm cls in
  let owner = List.nth order 0 and second = List.nth order 1 in
  Simnet.Host.crash pool.(owner).Proxy.host;
  let got = ref None in
  Proxy.Farm.request farm ~cls (fun r -> got := Some r);
  Simnet.Engine.run engine;
  (match !got with
  | Some (Proxy.Bytes _) -> ()
  | _ -> fail "secondary did not serve");
  check Alcotest.int "served by the next shard on the ring" 1
    pool.(second).Proxy.requests;
  check Alcotest.int "down owner untouched" 0 pool.(owner).Proxy.requests;
  check Alcotest.int "failover counted" 1 farm.Proxy.Farm.failovers;
  check Alcotest.bool "health view marks the owner down" false
    (Proxy.Farm.health farm).(owner);
  (* a restarted owner takes its keys back immediately *)
  Simnet.Host.restart pool.(owner).Proxy.host;
  Proxy.Farm.request farm ~cls (fun _ -> ());
  Simnet.Engine.run engine;
  check Alcotest.int "owner serves again after restart" 1
    pool.(owner).Proxy.requests;
  check Alcotest.int "no new failover" 1 farm.Proxy.Farm.failovers

let test_mid_flight_crash_fails_over () =
  let engine = Simnet.Engine.create () in
  let farm, pool = make_farm ~shards:3 ~origin_latency_ms:100 engine in
  let cls = "some/Applet" in
  let order = Proxy.Farm.preference_order farm cls in
  let owner = List.nth order 0 and second = List.nth order 1 in
  let got = ref None in
  Proxy.Farm.request farm ~cls (fun r -> got := Some r);
  (* crash the owner while its pipeline run occupies the CPU *)
  Simnet.Engine.schedule engine ~delay:100_200L (fun () ->
      Simnet.Host.crash pool.(owner).Proxy.host);
  Simnet.Engine.run engine;
  (match !got with
  | Some (Proxy.Bytes _) -> ()
  | _ -> fail "request lost in mid-flight crash");
  check Alcotest.int "handed to the next shard" 1 pool.(second).Proxy.requests;
  check Alcotest.int "failover counted" 1 farm.Proxy.Farm.failovers

let test_all_down_unavailable () =
  let engine = Simnet.Engine.create () in
  let farm, pool = make_farm ~shards:3 engine in
  Array.iter (fun p -> Simnet.Host.crash p.Proxy.host) pool;
  let got = ref None in
  Proxy.Farm.request farm ~cls:"some/Applet" (fun r -> got := Some r);
  Simnet.Engine.run engine;
  (match !got with
  | Some Proxy.Unavailable -> ()
  | _ -> fail "expected Unavailable with every shard down");
  check Alcotest.int "unavailable counted" 1 farm.Proxy.Farm.unavailable

(* --- Determinism and shard-count invariance. --- *)

let test_same_seed_same_trace () =
  let go () =
    Dvm.Scaling.run_farm ~duration_s:8 ~seed:11 ~clients:10 ~applet_count:5
      ~cache_capacity:(8 * 1024 * 1024) ~shards:3 ()
  in
  let p1 = go () and p2 = go () in
  check Alcotest.bool "trace digest nonempty" true
    (String.length p1.Dvm.Scaling.f_trace_digest > 0);
  check Alcotest.string "identical event traces under a fixed seed"
    p1.Dvm.Scaling.f_trace_digest p2.Dvm.Scaling.f_trace_digest;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "identical served digests" p1.Dvm.Scaling.f_served
    p2.Dvm.Scaling.f_served;
  check Alcotest.int "identical completion counts"
    p1.Dvm.Scaling.f_requests_completed p2.Dvm.Scaling.f_requests_completed

let test_shard_count_invariant_bytes () =
  (* The farm changes who does the work, never the work: the rewritten
     bytes served for each applet are identical whatever the shard
     count. (Shared popular workload so both configurations serve the
     same name set.) *)
  let go shards =
    Dvm.Scaling.run_farm ~duration_s:10 ~seed:5 ~clients:12 ~applet_count:6
      ~cache_capacity:(16 * 1024 * 1024) ~shards ()
  in
  let one = go 1 and three = go 3 in
  check Alcotest.bool "all applets served" true
    (List.length one.Dvm.Scaling.f_served = 6
    && List.length three.Dvm.Scaling.f_served = 6);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "served bytes identical across shard counts" one.Dvm.Scaling.f_served
    three.Dvm.Scaling.f_served

(* --- The scaling experiment. --- *)

let test_farm_scaling_past_the_knee () =
  (* Past a single proxy's memory knee, sharding divides the
     per-client state: aggregate throughput from 1 -> 4 shards must
     grow at least 3x (a small memory budget keeps the test quick;
     the regime is the same as 400 clients against 64 MB). *)
  let go shards =
    Dvm.Scaling.run_farm ~duration_s:8 ~seed:7 ~clients:48 ~applet_count:8
      ~mem_capacity:(4 * 1024 * 1024) ~shards ()
  in
  let one = go 1 and four = go 4 in
  check Alcotest.bool "one shard is thrashing" true
    (one.Dvm.Scaling.f_throughput_bytes_per_s > 0.0);
  let ratio =
    four.Dvm.Scaling.f_throughput_bytes_per_s
    /. one.Dvm.Scaling.f_throughput_bytes_per_s
  in
  check Alcotest.bool
    (Printf.sprintf "1 -> 4 shards scales >= 3x (got %.1fx)" ratio)
    true (ratio >= 3.0)

let test_coalescing_under_shared_load () =
  (* Shared popular workload: concurrent misses for the same class
     must coalesce (counter > 0) and the pipeline must run far fewer
     times than there are completions. Byte-identity of coalesced
     replies is enforced inside run_farm (divergence is fatal). *)
  let p =
    Dvm.Scaling.run_farm ~duration_s:8 ~seed:7 ~clients:40 ~applet_count:4
      ~cache_capacity:(16 * 1024 * 1024) ~shards:2 ()
  in
  check Alcotest.bool "requests coalesced" true (p.Dvm.Scaling.f_coalesced > 0);
  check Alcotest.bool "pipeline ran once per class" true
    (p.Dvm.Scaling.f_pipeline_runs <= 4);
  check Alcotest.bool "completions exceed pipeline runs" true
    (p.Dvm.Scaling.f_requests_completed > p.Dvm.Scaling.f_pipeline_runs)

(* --- Flapping: the probe/breaker hysteresis regression. ---

   A shard that alternates up/down faster than the probe interval used
   to flap the routing view on every probe: each crash marked it down,
   each restart marked it up, and keys bounced between owner and
   successor. The breaker's windowed failure count (successes reset
   the consecutive counter but not the window) opens after enough
   flaps, and [Farm.probe] then pins the shard out of rotation until a
   cooldown's worth of stable probes closes the breaker again. *)

let test_flapping_replica_stabilizes () =
  let engine = Simnet.Engine.create () in
  let farm, pool = make_farm ~shards:4 engine in
  let cls = "some/Applet" in
  let order = Proxy.Farm.preference_order farm cls in
  let owner = List.nth order 0 and second = List.nth order 1 in
  let flap_probe () =
    Simnet.Host.crash pool.(owner).Proxy.host;
    let down = Proxy.Farm.probe farm in
    Simnet.Host.restart pool.(owner).Proxy.host;
    let up = Proxy.Farm.probe farm in
    (down.(owner), up.(owner))
  in
  (* first flaps: the probe view follows the host, i.e. it flaps too *)
  let d1, u1 = flap_probe () in
  check Alcotest.bool "first crash probes down" false d1;
  check Alcotest.bool "first restart probes up" true u1;
  (* keep flapping: the windowed failures open the breaker, and the
     probe view stops following the flaps even while the host is up *)
  let _ = flap_probe () in
  let _ = flap_probe () in
  let _, u4 = flap_probe () in
  check Alcotest.bool "after repeated flaps the probe view pins down" false u4;
  check Alcotest.bool "breaker tripped" true
    (Proxy.Breaker.trips (Proxy.Farm.breaker farm owner) > 0);
  (* routing honours the open breaker: the owner is skipped without
     being touched, even though its host is up right now *)
  let before = pool.(owner).Proxy.requests in
  let got = ref None in
  Proxy.Farm.request farm ~cls (fun r -> got := Some r);
  Simnet.Engine.run engine;
  (match !got with
  | Some (Proxy.Bytes _) -> ()
  | _ -> fail "successor did not serve");
  check Alcotest.int "open breaker keeps traffic off the flapper" before
    pool.(owner).Proxy.requests;
  check Alcotest.bool "served by the successor" true
    (pool.(second).Proxy.requests > 0);
  check Alcotest.bool "breaker skip counted" true
    (farm.Proxy.Farm.breaker_skips > 0);
  (* after a cooldown of stable health, probes close the breaker and
     the owner takes its keys back *)
  Simnet.Engine.schedule engine ~delay:(Simnet.Engine.sec 10) (fun () -> ());
  Simnet.Engine.run engine;
  let p1 = Proxy.Farm.probe farm in
  let p2 = Proxy.Farm.probe farm in
  check Alcotest.bool "stable probes rehabilitate the shard" true
    (p1.(owner) || p2.(owner));
  let before = pool.(owner).Proxy.requests in
  Proxy.Farm.request farm ~cls (fun _ -> ());
  Simnet.Engine.run engine;
  check Alcotest.int "owner serves again after rehabilitation" (before + 1)
    pool.(owner).Proxy.requests

let () =
  Alcotest.run "farm"
    [
      ( "routing",
        [
          Alcotest.test_case "ring ownership" `Quick test_ring_routing;
          Alcotest.test_case "routes to owner" `Quick
            test_request_routes_to_owner;
        ] );
      ( "failover",
        [
          Alcotest.test_case "walks ring and returns" `Quick
            test_failover_walks_ring_and_returns;
          Alcotest.test_case "mid-flight crash" `Quick
            test_mid_flight_crash_fails_over;
          Alcotest.test_case "all shards down" `Quick test_all_down_unavailable;
          Alcotest.test_case "flapping replica stabilizes" `Quick
            test_flapping_replica_stabilizes;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same trace" `Quick
            test_same_seed_same_trace;
          Alcotest.test_case "shard-count-invariant bytes" `Quick
            test_shard_count_invariant_bytes;
        ] );
      ( "scaling",
        [
          Alcotest.test_case "3x past the knee" `Quick
            test_farm_scaling_past_the_knee;
          Alcotest.test_case "coalescing under shared load" `Quick
            test_coalescing_under_shared_load;
        ] );
    ]
