(* Tests for the fault-injection subsystem: deterministic fault
   plans, link loss and jitter, host crash/restart semantics, proxy
   replica failover, the client's resilient provider, and the
   availability experiment built from all of them. *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile

let check = Alcotest.check
let fail = Alcotest.fail
let static = [ CF.Public; CF.Static ]

(* --- Fault plans. --- *)

let test_plan_determinism () =
  let a = Simnet.Fault.create ~seed:7 in
  let b = Simnet.Fault.create ~seed:7 in
  for i = 1 to 200 do
    check Alcotest.bool
      (Printf.sprintf "flip %d agrees" i)
      (Simnet.Fault.flip a ~p:0.3) (Simnet.Fault.flip b ~p:0.3);
    check Alcotest.int64
      (Printf.sprintf "jitter %d agrees" i)
      (Simnet.Fault.jitter_us a ~max_us:1000)
      (Simnet.Fault.jitter_us b ~max_us:1000)
  done;
  let draws seed =
    let p = Simnet.Fault.create ~seed in
    Array.init 64 (fun _ -> Simnet.Fault.flip p ~p:0.5)
  in
  check Alcotest.bool "different seeds draw different streams" false
    (draws 7 = draws 8)

let test_threshold_monotone () =
  (* The threshold draw: any drop at 5% is also a drop at 25% while
     the streams stay aligned, so loss-rate sweeps are monotone. *)
  let lo = Simnet.Fault.create ~seed:3 in
  let hi = Simnet.Fault.create ~seed:3 in
  let lo_drops = ref 0 in
  for _ = 1 to 400 do
    let l = Simnet.Fault.flip lo ~p:0.05 in
    let h = Simnet.Fault.flip hi ~p:0.25 in
    if l then incr lo_drops;
    if l && not h then fail "a 5% drop was not a 25% drop"
  done;
  check Alcotest.bool "low-rate stream drew some drops" true (!lo_drops > 0)

(* --- Link loss and jitter. --- *)

let run_lossy_workload seed =
  let e = Simnet.Engine.create () in
  let link = Simnet.Link.ethernet_10mb e in
  let plan = Simnet.Fault.create ~seed in
  Simnet.Link.set_faults link ~plan ~drop_prob:0.3 ~jitter_max_us:2_000 ();
  let log = ref [] in
  for i = 1 to 40 do
    Simnet.Link.transfer link ~bytes:(500 * i)
      ~on_drop:(fun () ->
        log :=
          Printf.sprintf "%Ld drop %d" (Simnet.Engine.now e) i :: !log)
      (fun () ->
        log := Printf.sprintf "%Ld ok %d" (Simnet.Engine.now e) i :: !log)
  done;
  Simnet.Engine.run e;
  (List.rev !log, Simnet.Fault.trace plan, link.Simnet.Link.drops)

let test_link_fault_determinism () =
  (* The ISSUE's acceptance test: the same fault seed produces an
     identical simnet trace — delivery times, drop decisions and the
     fault plan's own record all repeat exactly. *)
  let a = run_lossy_workload 42 in
  let b = run_lossy_workload 42 in
  check Alcotest.bool "identical traces for identical seeds" true (a = b);
  let _, trace, drops = a in
  check Alcotest.bool "the profile dropped something" true (drops > 0);
  check Alcotest.int "every drop is in the fault trace" drops
    (List.length trace);
  let _, _, drops' = run_lossy_workload 43 in
  check Alcotest.bool "another seed draws a different loss pattern" true
    (drops <> drops' || a <> run_lossy_workload 43)

let test_drop_occupies_wire () =
  let e = Simnet.Engine.create () in
  let link = Simnet.Link.ethernet_10mb e in
  let plan = Simnet.Fault.create ~seed:1 in
  Simnet.Link.set_faults link ~plan ~drop_prob:1.0 ();
  let dropped_at = ref (-1L) in
  Simnet.Link.transfer link ~bytes:1250
    ~on_drop:(fun () -> dropped_at := Simnet.Engine.now e)
    (fun () -> fail "delivered despite drop_prob 1.0");
  (* The loss decision is drawn at submit time, so clearing the
     profile now leaves the first transfer doomed and the second
     clean — but the second still queues behind the lost bytes. *)
  Simnet.Link.clear_faults link;
  let ok_at = ref (-1L) in
  Simnet.Link.transfer link ~bytes:1250 (fun () ->
      ok_at := Simnet.Engine.now e);
  Simnet.Engine.run e;
  (* 1250 B at 10 Mb/s = 1 ms tx + 500 µs latency *)
  check Alcotest.int64 "on_drop at the would-be arrival" 1500L !dropped_at;
  check Alcotest.int64 "lost transfer still occupied the wire" 2500L !ok_at;
  check Alcotest.int "drop counted" 1 link.Simnet.Link.drops

(* --- Host crash/restart. --- *)

let test_host_crash_semantics () =
  let e = Simnet.Engine.create () in
  let h = Simnet.Host.create e ~name:"h" in
  Simnet.Host.allocate h 1000;
  let ok = ref 0 in
  let failed = ref 0 in
  Simnet.Host.compute h
    ~on_fail:(fun () -> incr failed)
    ~cost_us:1000L
    (fun () -> incr ok);
  (* crash mid-flight: the queued completion is abandoned *)
  Simnet.Engine.schedule_at e 500L (fun () -> Simnet.Host.crash h);
  Simnet.Engine.run e;
  check Alcotest.int "in-flight work abandoned" 0 !ok;
  check Alcotest.int "on_fail fired for in-flight work" 1 !failed;
  (* a down host refuses new work *)
  Simnet.Host.compute h
    ~on_fail:(fun () -> incr failed)
    ~cost_us:10L
    (fun () -> incr ok);
  Simnet.Engine.run e;
  check Alcotest.int "down host refuses work" 2 !failed;
  check Alcotest.bool "host reports down" false (Simnet.Host.is_up h);
  (* restart: partial memory retention, idle CPU, work completes *)
  Simnet.Host.restart ~mem_retained:0.25 h;
  check Alcotest.bool "host reports up" true (Simnet.Host.is_up h);
  check Alcotest.int "only retained memory survives" 250
    h.Simnet.Host.mem_used;
  Simnet.Host.compute h ~cost_us:10L (fun () -> incr ok);
  Simnet.Engine.run e;
  check Alcotest.int "restarted host computes" 1 !ok

let test_fault_schedule () =
  let e = Simnet.Engine.create () in
  let h = Simnet.Host.create e ~name:"p" in
  let plan = Simnet.Fault.create ~seed:5 in
  let restarted = ref false in
  Simnet.Fault.schedule_host_faults plan h ~mem_retained:0.0
    ~on_restart:(fun () -> restarted := true)
    ~schedule:[ (1000L, 500L) ]
    ();
  let during = ref true in
  let after = ref false in
  Simnet.Engine.schedule_at e 1200L (fun () -> during := Simnet.Host.is_up h);
  Simnet.Engine.schedule_at e 1600L (fun () -> after := Simnet.Host.is_up h);
  Simnet.Engine.run e;
  check Alcotest.bool "down during the outage" false !during;
  check Alcotest.bool "up after the restart" true !after;
  check Alcotest.bool "on_restart ran" true !restarted;
  check Alcotest.int "crash recorded" 1 (Simnet.Fault.crashes plan);
  check Alcotest.int "restart recorded" 1 (Simnet.Fault.restarts plan);
  check Alcotest.int "both faults in the trace" 2
    (List.length (Simnet.Fault.trace plan))

(* --- Replica failover. --- *)

let hello =
  B.class_ "Hello" [ B.meth ~flags:static "main" "()V" [ B.Return ] ]

let boot_oracle = Verifier.Oracle.of_classes (Jvm.Bootlib.boot_classes ())

let origin_for classes =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun cf ->
      Hashtbl.replace tbl cf.CF.name (Bytecode.Encode.class_to_bytes cf))
    classes;
  fun name -> Hashtbl.find_opt tbl name

let mk_pool engine ~latency n =
  Array.init n (fun _ ->
      Proxy.create engine
        ~origin:(origin_for [ hello ])
        ~origin_latency:(fun _ -> latency)
        ~filters:[ Verifier.Static_verifier.filter ~oracle:boot_oracle () ]
        ())

let test_replica_failover_and_exhaustion () =
  let e = Simnet.Engine.create () in
  let pool = mk_pool e ~latency:0L 2 in
  let r = Proxy.Replica.create e pool in
  Simnet.Host.crash pool.(0).Proxy.host;
  let reply = ref None in
  Proxy.Replica.request r ~cls:"Hello" (fun x -> reply := Some x);
  Simnet.Engine.run e;
  (match !reply with
  | Some (Proxy.Bytes _) -> ()
  | _ -> fail "secondary did not serve");
  check Alcotest.int "failover counted" 1 r.Proxy.Replica.failovers;
  check Alcotest.bool "primary marked unhealthy" false
    r.Proxy.Replica.health.(0);
  (* every replica down: Unavailable, after a simulated hop *)
  Simnet.Host.crash pool.(1).Proxy.host;
  let reply2 = ref None in
  Proxy.Replica.request r ~cls:"Hello" (fun x -> reply2 := Some x);
  Simnet.Engine.run e;
  (match !reply2 with
  | Some Proxy.Unavailable -> ()
  | _ -> fail "expected Unavailable with every replica down");
  check Alcotest.int "unavailable counted" 1 r.Proxy.Replica.unavailable;
  (* a restarted primary takes traffic back: no new failover *)
  Simnet.Host.restart pool.(0).Proxy.host;
  let reply3 = ref None in
  Proxy.Replica.request r ~cls:"Hello" (fun x -> reply3 := Some x);
  Simnet.Engine.run e;
  (match !reply3 with
  | Some (Proxy.Bytes _) -> ()
  | _ -> fail "restarted primary did not serve");
  check Alcotest.int "fail-back: no new failover" 1 r.Proxy.Replica.failovers

let test_replica_failover_inflight () =
  (* The primary crashes while a request is in flight; the facade's
     on_fail hook re-dispatches it to the live secondary. *)
  let e = Simnet.Engine.create () in
  let pool = mk_pool e ~latency:(Simnet.Engine.ms 100) 2 in
  let r = Proxy.Replica.create e pool in
  let served = ref None in
  Proxy.Replica.request r ~cls:"Hello" (fun reply -> served := Some reply);
  Simnet.Engine.schedule_at e (Simnet.Engine.ms 50) (fun () ->
      Simnet.Host.crash pool.(0).Proxy.host);
  Simnet.Engine.run e;
  (match !served with
  | Some (Proxy.Bytes _) -> ()
  | _ -> fail "in-flight crash not failed over");
  check Alcotest.int "failover counted" 1 r.Proxy.Replica.failovers;
  check Alcotest.int "secondary fetched from origin" 1
    pool.(1).Proxy.origin_fetches

(* --- The client's resilient provider. --- *)

let test_resilient_provider_retries () =
  let tries = ref 0 in
  let fetch _cls =
    incr tries;
    if !tries < 3 then Dvm.Client.Fetch_unavailable
    else Dvm.Client.Fetched "bytes"
  in
  let p = Dvm.Client.resilient_provider fetch in
  check Alcotest.(option string) "served after transient failures"
    (Some "bytes") (p "A");
  check Alcotest.int "retried until it worked" 3 !tries;
  let p_absent = Dvm.Client.resilient_provider (fun _ -> Dvm.Client.Fetch_absent) in
  check Alcotest.(option string) "absence is not retried" None
    (p_absent "Nowhere")

let test_resilient_provider_degrades () =
  let backoffs = ref [] in
  let p =
    Dvm.Client.resilient_provider
      ~on_backoff:(fun b -> backoffs := b :: !backoffs)
      (fun _ -> Dvm.Client.Fetch_unavailable)
  in
  match p "pkg/Gone" with
  | None -> fail "exhausted retries must degrade, not vanish"
  | Some bytes ->
    (* bounded exponential backoff between the 4 default attempts *)
    check
      Alcotest.(list int64)
      "bounded exponential backoffs"
      [ 50_000L; 100_000L; 200_000L ]
      (List.rev !backoffs);
    (* the degraded bytes are the error-propagation replacement class:
       same name, raises at initialization *)
    let cf = Bytecode.Decode.class_of_bytes bytes in
    check Alcotest.string "replacement keeps the class name" "pkg/Gone"
      cf.CF.name;
    let vm = Jvm.Bootlib.fresh_vm () in
    Jvm.Classreg.register vm.Jvm.Vmstate.reg cf;
    (match Jvm.Interp.ensure_initialized vm "pkg/Gone" with
    | _ -> fail "degraded class must raise at initialization"
    | exception Jvm.Vmstate.Throw _ -> ())

(* --- The availability experiment. --- *)

(* --- Seed determinism as a property, not an example. ---

   The replayability contract behind the chaos harness: every run is a
   pure function of its seed. Checked over arbitrary seeds, not just
   the ones the example tests happen to use. *)

let prop_fault_trace_deterministic =
  QCheck.Test.make ~name:"equal seeds draw equal fault traces" ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let draw () =
        let p = Simnet.Fault.create ~seed in
        let e = Simnet.Engine.create () in
        let link = Simnet.Link.ethernet_10mb e in
        Simnet.Link.set_faults link ~plan:p ~drop_prob:0.2
          ~jitter_max_us:1_000 ();
        for i = 1 to 25 do
          Simnet.Link.transfer link ~bytes:(400 * i) (fun () -> ())
        done;
        Simnet.Engine.run e;
        ( Simnet.Fault.trace p,
          Array.init 16 (fun _ -> Simnet.Fault.range p ~max:1000) )
      in
      draw () = draw ())

let prop_availability_deterministic =
  QCheck.Test.make ~name:"equal seeds give equal availability outcomes"
    ~count:8
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let scenario =
        { Dvm.Availability.default_scenario with Dvm.Availability.sc_seed = seed }
      in
      let run () = Dvm.Availability.run ~scenario ~loss_pct:5.0 ~replicas:2 () in
      run () = run ())

let test_availability_deterministic () =
  let a = Dvm.Availability.run ~loss_pct:5.0 ~replicas:1 () in
  let b = Dvm.Availability.run ~loss_pct:5.0 ~replicas:1 () in
  check Alcotest.bool "identical runs for identical seeds" true (a = b);
  check Alcotest.bool "losses were injected" true
    (a.Dvm.Availability.av_drops > 0);
  check Alcotest.bool "losses forced retries" true
    (a.Dvm.Availability.av_retries > 0)

let test_availability_loss_slows_startup () =
  let at loss =
    (Dvm.Availability.run ~loss_pct:loss ~replicas:1 ())
      .Dvm.Availability.av_startup_us
  in
  let s0 = at 0.0 and s5 = at 5.0 and s10 = at 10.0 in
  check Alcotest.bool "5% loss slower than lossless" true (s5 > s0);
  check Alcotest.bool "10% loss no faster than 5%" true (s10 >= s5)

let test_availability_crash_recovery () =
  let scenario = Dvm.Availability.crash_scenario in
  let one = Dvm.Availability.run ~scenario ~loss_pct:0.0 ~replicas:1 () in
  let two = Dvm.Availability.run ~scenario ~loss_pct:0.0 ~replicas:2 () in
  check Alcotest.bool "a lone crashed proxy degrades classes" true
    (one.Dvm.Availability.av_degraded > 0);
  check Alcotest.int "a second replica recovers every class" 0
    two.Dvm.Availability.av_degraded;
  check Alcotest.bool "recovery happened via failover" true
    (two.Dvm.Availability.av_failovers > 0);
  check Alcotest.bool "failover beats waiting out the outage" true
    (two.Dvm.Availability.av_startup_us < one.Dvm.Availability.av_startup_us);
  let has_fault kind =
    List.exists
      (fun line ->
        match String.index_opt line ' ' with
        | Some i ->
          String.sub line (i + 1) (String.length line - i - 1)
          = kind ^ " proxy"
        | None -> false)
      one.Dvm.Availability.av_trace
  in
  check Alcotest.bool "crash in the fault trace" true (has_fault "crash");
  check Alcotest.bool "restart in the fault trace" true (has_fault "restart")

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "determinism" `Quick test_plan_determinism;
          Alcotest.test_case "threshold monotone" `Quick
            test_threshold_monotone;
        ] );
      ( "link",
        [
          Alcotest.test_case "seeded trace determinism" `Quick
            test_link_fault_determinism;
          Alcotest.test_case "drop occupies wire" `Quick
            test_drop_occupies_wire;
        ] );
      ( "host",
        [
          Alcotest.test_case "crash semantics" `Quick
            test_host_crash_semantics;
          Alcotest.test_case "fault schedule" `Quick test_fault_schedule;
        ] );
      ( "replica",
        [
          Alcotest.test_case "failover + exhaustion" `Quick
            test_replica_failover_and_exhaustion;
          Alcotest.test_case "in-flight crash" `Quick
            test_replica_failover_inflight;
        ] );
      ( "client",
        [
          Alcotest.test_case "retries" `Quick test_resilient_provider_retries;
          Alcotest.test_case "graceful degradation" `Quick
            test_resilient_provider_degrades;
        ] );
      ( "availability",
        [
          Alcotest.test_case "deterministic" `Quick
            test_availability_deterministic;
          Alcotest.test_case "loss slows startup" `Quick
            test_availability_loss_slows_startup;
          Alcotest.test_case "crash recovery" `Quick
            test_availability_crash_recovery;
        ] );
      ( "seed-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_fault_trace_deterministic;
            prop_availability_deterministic;
          ] );
    ]
