(* Malformed-classfile fuzzing: seeded byte-level corruptions of real
   encoded classes pushed through the production decoder, the static
   verifier and the full proxy pipeline. The contract under test is
   the paper's §3.1 error discipline — hostile input never escapes as
   an arbitrary exception; it either decodes and verifies (possibly
   [Rejected]), or surfaces as [Decode.Format_error], which the
   pipeline turns into a well-formed error-propagation replacement
   class. *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile
module I = Bytecode.Instr

let check = Alcotest.check

(* --- Corpus: small but structurally rich classes (branches, a loop,
   an exception handler, string constants, calls) so mutations hit
   pool entries, code arrays, handler tables and attributes. --- *)

let static = [ CF.Public; CF.Static ]

let corpus =
  [
    B.class_ "fuzz/Branchy"
      [
        B.meth ~flags:static "f" "(I)I"
          [
            B.Iload 0;
            B.If_z (I.Ne, "else");
            B.Const 1;
            B.Goto "join";
            B.Label "else";
            B.Const 2;
            B.Label "join";
            B.Ireturn;
          ];
      ];
    B.class_ "fuzz/Loopy"
      [
        B.meth ~flags:static "sum" "(I)I"
          [
            B.Const 0;
            B.Istore 1;
            B.Const 0;
            B.Istore 2;
            B.Label "head";
            B.Iload 2;
            B.Iload 0;
            B.If_icmp (I.Ge, "exit");
            B.Iload 1;
            B.Iload 2;
            B.Add;
            B.Istore 1;
            B.Inc (2, 1);
            B.Goto "head";
            B.Label "exit";
            B.Iload 1;
            B.Ireturn;
          ];
        B.meth ~flags:static "main" "()V"
          [
            B.Const 4;
            B.Invokestatic ("fuzz/Loopy", "sum", "(I)I");
            B.Pop;
            B.Return;
          ];
      ];
    B.class_ "fuzz/Catchy"
      [
        B.meth ~flags:static
          ~handlers:[ ("t0", "t1", "h", Some "java/lang/Exception") ]
          "g" "()I"
          [
            B.Label "t0";
            B.Push_str "boom";
            B.Pop;
            B.Const 7;
            B.Label "t1";
            B.Ireturn;
            B.Label "h";
            B.Pop;
            B.Const 0;
            B.Ireturn;
          ];
      ];
  ]

let corpus_bytes =
  Array.of_list (List.map Bytecode.Encode.class_to_bytes corpus)

(* --- Mutation generator: a corpus pick plus a short program of byte
   edits (overwrite, truncate, insert, delete), applied in order. --- *)

type edit = Set of int * char | Trunc of int | Ins of int * char | Del of int

let apply_edit s = function
  | Set (p, c) ->
    if String.length s = 0 then s
    else begin
      let b = Bytes.of_string s in
      Bytes.set b (p mod Bytes.length b) c;
      Bytes.to_string b
    end
  | Trunc k -> String.sub s 0 (min k (String.length s))
  | Ins (p, c) ->
    let p = if String.length s = 0 then 0 else p mod (String.length s + 1) in
    String.sub s 0 p ^ String.make 1 c ^ String.sub s p (String.length s - p)
  | Del p ->
    if String.length s = 0 then s
    else
      let p = p mod String.length s in
      String.sub s 0 p ^ String.sub s (p + 1) (String.length s - p - 1)

let mutate bytes edits = List.fold_left apply_edit bytes edits

let gen_case =
  QCheck.Gen.(
    let edit =
      frequency
        [
          (6, map2 (fun p c -> Set (p, Char.chr c)) (int_bound 99_999) (int_bound 255));
          (1, map (fun k -> Trunc k) (int_bound 2_000));
          (2, map2 (fun p c -> Ins (p, Char.chr c)) (int_bound 99_999) (int_bound 255));
          (2, map (fun p -> Del p) (int_bound 99_999));
        ]
    in
    pair (int_bound (Array.length corpus_bytes - 1)) (list_size (int_range 1 8) edit))

let edit_to_string = function
  | Set (p, c) -> Printf.sprintf "set[%d]=0x%02x" p (Char.code c)
  | Trunc k -> Printf.sprintf "trunc[%d]" k
  | Ins (p, c) -> Printf.sprintf "ins[%d]=0x%02x" p (Char.code c)
  | Del p -> Printf.sprintf "del[%d]" p

let arbitrary_case =
  QCheck.make gen_case ~print:(fun (ci, edits) ->
      Printf.sprintf "corpus[%d] %s" ci
        (String.concat ";" (List.map edit_to_string edits)))

(* --- Property 1: decoder and verifier never leak an exception. A
   mutated image either fails to decode with [Format_error], or
   decodes to a class the static verifier judges without raising
   (either verdict is fine — the discipline is the error channel, not
   the answer). --- *)

let boot_oracle = Verifier.Oracle.of_classes (Jvm.Bootlib.boot_classes ())

let prop_decode_verify_total =
  QCheck.Test.make ~name:"decoder+verifier never leak an exception"
    ~count:1000 arbitrary_case (fun (ci, edits) ->
      let bytes = mutate corpus_bytes.(ci) edits in
      (* The attributes-only fast path obeys the same contract. *)
      (match Bytecode.Decode.class_attributes_of_bytes bytes with
      | _ -> ()
      | exception Bytecode.Decode.Format_error _ -> ());
      match Bytecode.Decode.class_of_bytes bytes with
      | exception Bytecode.Decode.Format_error _ -> true
      | cf -> (
        match Verifier.Static_verifier.verify ~oracle:boot_oracle cf with
        | Verifier.Static_verifier.Verified _
        | Verifier.Static_verifier.Rejected _ -> true))

(* --- Property 2: the pipeline converts every hostile input into a
   servable outcome — no exception, and the served bytes are
   themselves a well-formed class; on rejection, the §3.1 replacement
   (a class whose <clinit> throws) is what got served. --- *)

let filters () = [ Verifier.Static_verifier.filter ~oracle:boot_oracle () ]

let prop_pipeline_total =
  QCheck.Test.make ~name:"pipeline serves a clean §3.1 outcome on any input"
    ~count:400 arbitrary_case (fun (ci, edits) ->
      let bytes = mutate corpus_bytes.(ci) edits in
      let out = Proxy.Pipeline.run (filters ()) bytes in
      let served = Bytecode.Decode.class_of_bytes out.Proxy.Pipeline.out_bytes in
      match out.Proxy.Pipeline.rejected with
      | None -> true
      | Some (_filter, _reason) ->
        (* The replacement class raises at initialization: it must
           carry a <clinit> and decode under its §3.1 name. *)
        CF.find_method served "<clinit>" "()V" <> None)

(* --- Fixed regression cases the generator might visit rarely. --- *)

let test_empty_and_garbage () =
  List.iter
    (fun s ->
      (match Bytecode.Decode.class_of_bytes s with
      | _ -> Alcotest.fail "expected Format_error"
      | exception Bytecode.Decode.Format_error _ -> ());
      let out = Proxy.Pipeline.run (filters ()) s in
      check Alcotest.bool "rejected" true (out.Proxy.Pipeline.rejected <> None);
      let served = Bytecode.Decode.class_of_bytes out.Proxy.Pipeline.out_bytes in
      check Alcotest.string "§3.1 name" "malformed/Input" served.CF.name)
    [ ""; "\x00"; "garbage not a class"; String.make 4096 '\xff' ]

let test_truncation_sweep () =
  (* Every prefix of a real class either decodes (full length) or
     raises Format_error — never anything else. *)
  let bytes = corpus_bytes.(1) in
  for k = 0 to String.length bytes - 1 do
    match Bytecode.Decode.class_of_bytes (String.sub bytes 0 k) with
    | _ -> Alcotest.fail (Printf.sprintf "prefix %d decoded" k)
    | exception Bytecode.Decode.Format_error _ -> ()
  done;
  match Bytecode.Decode.class_of_bytes bytes with
  | cf -> check Alcotest.string "full image decodes" "fuzz/Loopy" cf.CF.name
  | exception Bytecode.Decode.Format_error e ->
    Alcotest.fail ("full image failed to decode: " ^ e)

let () =
  Alcotest.run "fuzz"
    [
      ( "bytes",
        [
          QCheck_alcotest.to_alcotest prop_decode_verify_total;
          QCheck_alcotest.to_alcotest prop_pipeline_total;
          Alcotest.test_case "empty and garbage inputs" `Quick
            test_empty_and_garbage;
          Alcotest.test_case "truncation sweep" `Quick test_truncation_sweep;
        ] );
    ]
