(* Tests for the JVM runtime: interpreter semantics, exceptions,
   dispatch, class loading/initialization, natives, faults on
   unverified-style code. *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile
module I = Bytecode.Instr
module V = Jvm.Value

let check = Alcotest.check
let fail = Alcotest.fail

let static = [ CF.Public; CF.Static ]

(* Build a VM with the given extra classes registered directly. *)
let vm_with classes =
  let vm = Jvm.Bootlib.fresh_vm () in
  List.iter (Jvm.Classreg.register vm.Jvm.Vmstate.reg) classes;
  vm

let run_main_expect_output classes entry expected =
  let vm = vm_with classes in
  (match Jvm.Interp.run_main vm entry with
  | Ok () -> ()
  | Error e -> fail ("uncaught: " ^ Jvm.Interp.describe_throwable e));
  check Alcotest.string "output" expected (Jvm.Vmstate.output vm)

let call_static vm cls name desc args = Jvm.Interp.invoke vm ~cls ~name ~desc args

(* --- Basics. --- *)

let hello_cls =
  B.class_ "Hello"
    [
      B.meth ~flags:static "main" "()V"
        [
          B.Getstatic ("java/lang/System", "out", "Ljava/io/OutputStream;");
          B.Push_str "hello world";
          B.Invokevirtual
            ("java/io/OutputStream", "println", "(Ljava/lang/String;)V");
          B.Return;
        ];
    ]

let test_hello () = run_main_expect_output [ hello_cls ] "Hello" "hello world\n"

let gcd_cls =
  B.class_ "Gcd"
    [
      B.meth ~flags:static "gcd" "(II)I"
        [
          B.Label "top";
          B.Iload 1;
          B.If_z (I.Eq, "done");
          B.Iload 0;
          B.Iload 1;
          B.Rem;
          B.Iload 1;
          B.Istore 0;
          B.Istore 1;
          B.Goto "top";
          B.Label "done";
          B.Iload 0;
          B.Ireturn;
        ];
    ]

let test_gcd () =
  let vm = vm_with [ gcd_cls ] in
  match call_static vm "Gcd" "gcd" "(II)I" [ V.Int 252l; V.Int 105l ] with
  | Some (V.Int 21l) -> ()
  | r ->
    fail
      (match r with
      | Some v -> "got " ^ V.to_string v
      | None -> "got nothing")

let test_arithmetic_ops () =
  let body ops = B.meth ~flags:static "f" "()I" (ops @ [ B.Ireturn ]) in
  let expect name ops result =
    let cls = B.class_ ("Arith" ^ name) [ body ops ] in
    let vm = vm_with [ cls ] in
    match call_static vm ("Arith" ^ name) "f" "()I" [] with
    | Some (V.Int n) -> check Alcotest.int32 name result n
    | _ -> fail name
  in
  expect "add" [ B.Const 2; B.Const 3; B.Add ] 5l;
  expect "sub" [ B.Const 2; B.Const 3; B.Sub ] (-1l);
  expect "mul" [ B.Const (-4); B.Const 3; B.Mul ] (-12l);
  expect "div" [ B.Const 7; B.Const 2; B.Div ] 3l;
  expect "rem" [ B.Const 7; B.Const 2; B.Rem ] 1l;
  expect "neg" [ B.Const 9; B.Neg ] (-9l);
  expect "shl" [ B.Const 1; B.Const 4; B.Shl ] 16l;
  expect "shr" [ B.Const (-16); B.Const 2; B.Shr ] (-4l);
  expect "and" [ B.Const 12; B.Const 10; B.And ] 8l;
  expect "or" [ B.Const 12; B.Const 10; B.Or ] 14l;
  expect "xor" [ B.Const 12; B.Const 10; B.Xor ] 6l;
  expect "swap" [ B.Const 1; B.Const 2; B.Swap; B.Sub ] 1l;
  expect "dup_x1" [ B.Const 5; B.Const 3; B.Dup_x1; B.Add; B.Add ] 11l

let test_int32_wraparound () =
  let cls =
    B.class_ "Wrap"
      [
        B.meth ~flags:static "f" "()I"
          [ B.Const 2147483647; B.Const 1; B.Add; B.Ireturn ];
      ]
  in
  let vm = vm_with [ cls ] in
  match call_static vm "Wrap" "f" "()I" [] with
  | Some (V.Int n) -> check Alcotest.int32 "wraps" Int32.min_int n
  | _ -> fail "no result"

let test_tableswitch () =
  let cls =
    B.class_ "Sw"
      [
        B.meth ~flags:static "f" "(I)I"
          [
            B.Iload 0;
            B.Switch (10, [ "a"; "b"; "c" ], "d");
            B.Label "a";
            B.Const 1;
            B.Ireturn;
            B.Label "b";
            B.Const 2;
            B.Ireturn;
            B.Label "c";
            B.Const 3;
            B.Ireturn;
            B.Label "d";
            B.Const 0;
            B.Ireturn;
          ];
      ]
  in
  let vm = vm_with [ cls ] in
  let f n =
    match call_static vm "Sw" "f" "(I)I" [ V.Int (Int32.of_int n) ] with
    | Some (V.Int r) -> Int32.to_int r
    | _ -> fail "no result"
  in
  check Alcotest.int "10" 1 (f 10);
  check Alcotest.int "11" 2 (f 11);
  check Alcotest.int "12" 3 (f 12);
  check Alcotest.int "9" 0 (f 9);
  check Alcotest.int "13" 0 (f 13)

let test_jsr_ret () =
  (* A subroutine called from two sites, as javac's try/finally once
     compiled. *)
  let cls =
    B.class_ "JsrDemo"
      [
        B.meth ~flags:static "f" "(I)I"
          [
            B.Const 0;
            B.Istore 1;
            B.Iload 0;
            B.If_z (I.Eq, "second");
            B.Jsr "sub";
            B.Goto "out";
            B.Label "second";
            B.Jsr "sub";
            B.Jsr "sub";
            B.Label "out";
            B.Iload 1;
            B.Ireturn;
            B.Label "sub";
            B.Astore 2;
            B.Inc (1, 10);
            B.Ret 2;
          ];
      ]
  in
  let vm = vm_with [ cls ] in
  let f n =
    match call_static vm "JsrDemo" "f" "(I)I" [ V.Int (Int32.of_int n) ] with
    | Some (V.Int r) -> Int32.to_int r
    | _ -> fail "no result"
  in
  check Alcotest.int "one call" 10 (f 1);
  check Alcotest.int "two calls" 20 (f 0)

(* --- Objects, dispatch, fields. --- *)

let animal_classes =
  [
    B.class_ "Animal"
      [
        B.default_init "java/lang/Object";
        B.meth "speak" "()Ljava/lang/String;" [ B.Push_str "..."; B.Areturn ];
        B.meth "describe" "()Ljava/lang/String;"
          [
            (* virtual call through this: subclasses override speak *)
            B.Aload 0;
            B.Invokevirtual ("Animal", "speak", "()Ljava/lang/String;");
            B.Areturn;
          ];
      ];
    B.class_ "Dog" ~super:"Animal"
      [
        B.default_init "Animal";
        B.meth "speak" "()Ljava/lang/String;" [ B.Push_str "woof"; B.Areturn ];
      ];
    B.class_ "Cat" ~super:"Animal"
      [
        B.default_init "Animal";
        B.meth "speak" "()Ljava/lang/String;" [ B.Push_str "meow"; B.Areturn ];
      ];
    B.class_ "Kennel"
      [
        B.meth ~flags:static "main" "()V"
          [
            B.New "Dog";
            B.Dup;
            B.Invokespecial ("Dog", "<init>", "()V");
            B.Invokevirtual ("Animal", "describe", "()Ljava/lang/String;");
            B.Astore 0;
            B.Getstatic ("java/lang/System", "out", "Ljava/io/OutputStream;");
            B.Aload 0;
            B.Invokevirtual
              ("java/io/OutputStream", "println", "(Ljava/lang/String;)V");
            B.New "Cat";
            B.Dup;
            B.Invokespecial ("Cat", "<init>", "()V");
            B.Invokevirtual ("Animal", "describe", "()Ljava/lang/String;");
            B.Astore 0;
            B.Getstatic ("java/lang/System", "out", "Ljava/io/OutputStream;");
            B.Aload 0;
            B.Invokevirtual
              ("java/io/OutputStream", "println", "(Ljava/lang/String;)V");
            B.Return;
          ];
      ];
  ]

let test_virtual_dispatch () =
  run_main_expect_output animal_classes "Kennel" "woof\nmeow\n"

let counter_cls =
  B.class_ "Counter"
    ~fields:[ B.field "n" "I" ]
    [
      B.default_init "java/lang/Object";
      B.meth "bump" "()V"
        [
          B.Aload 0;
          B.Aload 0;
          B.Getfield ("Counter", "n", "I");
          B.Const 1;
          B.Add;
          B.Putfield ("Counter", "n", "I");
          B.Return;
        ];
      B.meth "get" "()I"
        [ B.Aload 0; B.Getfield ("Counter", "n", "I"); B.Ireturn ];
    ]

let test_instance_fields () =
  let vm = vm_with [ counter_cls ] in
  let o =
    Jvm.Heap.alloc_obj vm.Jvm.Vmstate.heap ~cls:"Counter"
      ~field_descs:[ ("n", "I") ]
  in
  let recv = V.Obj o in
  for _ = 1 to 5 do
    ignore (Jvm.Interp.invoke vm ~cls:"Counter" ~name:"bump" ~desc:"()V" [ recv ])
  done;
  match Jvm.Interp.invoke vm ~cls:"Counter" ~name:"get" ~desc:"()I" [ recv ] with
  | Some (V.Int 5l) -> ()
  | _ -> fail "field count wrong"

let test_clinit_runs_once () =
  let cls =
    B.class_ "WithInit"
      ~fields:[ B.field ~flags:static "k" "I" ]
      [
        B.meth ~flags:static "<clinit>" "()V"
          [
            B.Getstatic ("WithInit", "k", "I");
            B.Const 7;
            B.Add;
            B.Putstatic ("WithInit", "k", "I");
            B.Return;
          ];
        B.meth ~flags:static "get" "()I"
          [ B.Getstatic ("WithInit", "k", "I"); B.Ireturn ];
      ]
  in
  let vm = vm_with [ cls ] in
  let get () =
    match call_static vm "WithInit" "get" "()I" [] with
    | Some (V.Int n) -> Int32.to_int n
    | _ -> fail "no result"
  in
  check Alcotest.int "first" 7 (get ());
  check Alcotest.int "second (no re-init)" 7 (get ())

let test_inherited_fields_visible () =
  let classes =
    [
      B.class_ "Base" ~fields:[ B.field "x" "I" ] [ B.default_init "java/lang/Object" ];
      B.class_ "Derived" ~super:"Base"
        [
          B.default_init "Base";
          B.meth "setX" "(I)V"
            [ B.Aload 0; B.Iload 1; B.Putfield ("Base", "x", "I"); B.Return ];
          B.meth "getX" "()I"
            [ B.Aload 0; B.Getfield ("Base", "x", "I"); B.Ireturn ];
        ];
    ]
  in
  let vm = vm_with classes in
  let fields = Jvm.Classreg.all_instance_fields vm.Jvm.Vmstate.reg "Derived" in
  let o = Jvm.Heap.alloc_obj vm.Jvm.Vmstate.heap ~cls:"Derived" ~field_descs:fields in
  ignore
    (Jvm.Interp.invoke vm ~cls:"Derived" ~name:"setX" ~desc:"(I)V"
       [ V.Obj o; V.Int 33l ]);
  match Jvm.Interp.invoke vm ~cls:"Derived" ~name:"getX" ~desc:"()I" [ V.Obj o ] with
  | Some (V.Int 33l) -> ()
  | _ -> fail "inherited field broken"

let speaker_iface =
  B.class_ ~flags:[ CF.Public; CF.Abstract ] "Speaker"
    [ B.abstract_meth "speak" "()Ljava/lang/String;" ]

let test_interface_dispatch () =
  let duck =
    B.class_ "Duck" ~interfaces:[ "Speaker" ]
      [
        B.default_init "java/lang/Object";
        B.meth "speak" "()Ljava/lang/String;" [ B.Push_str "quack"; B.Areturn ];
      ]
  in
  let caller =
    B.class_ "Pond"
      [
        B.meth ~flags:static "main" "()V"
          [
            B.New "Duck";
            B.Dup;
            B.Invokespecial ("Duck", "<init>", "()V");
            B.Astore 0;
            B.Getstatic ("java/lang/System", "out", "Ljava/io/OutputStream;");
            B.Aload 0;
            B.Invokeinterface ("Speaker", "speak", "()Ljava/lang/String;");
            B.Invokevirtual
              ("java/io/OutputStream", "println", "(Ljava/lang/String;)V");
            B.Return;
          ];
      ]
  in
  run_main_expect_output [ speaker_iface; duck; caller ] "Pond" "quack\n";
  (* instanceof through the interface *)
  let vm = vm_with [ speaker_iface; duck ] in
  check Alcotest.bool "Duck <= Speaker" true
    (Jvm.Classreg.is_subclass vm.Jvm.Vmstate.reg ~sub:"Duck" ~super:"Speaker")

(* --- Arrays. --- *)

let test_arrays () =
  let cls =
    B.class_ "Arr"
      [
        B.meth ~flags:static "sum" "(I)I"
          [
            (* arr = new int[n]; fill arr[i] = i; sum it *)
            B.Iload 0;
            B.Newarray;
            B.Astore 1;
            B.Const 0;
            B.Istore 2;
            B.Label "fill";
            B.Iload 2;
            B.Iload 0;
            B.If_icmp (I.Ge, "sumstart");
            B.Aload 1;
            B.Iload 2;
            B.Iload 2;
            B.Iastore;
            B.Inc (2, 1);
            B.Goto "fill";
            B.Label "sumstart";
            B.Const 0;
            B.Istore 3;
            B.Const 0;
            B.Istore 2;
            B.Label "sum";
            B.Iload 2;
            B.Aload 1;
            B.Arraylength;
            B.If_icmp (I.Ge, "done");
            B.Iload 3;
            B.Aload 1;
            B.Iload 2;
            B.Iaload;
            B.Add;
            B.Istore 3;
            B.Inc (2, 1);
            B.Goto "sum";
            B.Label "done";
            B.Iload 3;
            B.Ireturn;
          ];
      ]
  in
  let vm = vm_with [ cls ] in
  match call_static vm "Arr" "sum" "(I)I" [ V.Int 10l ] with
  | Some (V.Int 45l) -> ()
  | Some v -> fail ("got " ^ V.to_string v)
  | None -> fail "no result"

let expect_throw vm cls name desc args exn_cls =
  match Jvm.Interp.invoke vm ~cls ~name ~desc args with
  | _ -> fail ("expected " ^ exn_cls)
  | exception Jvm.Vmstate.Throw v ->
    check Alcotest.string "exception class" exn_cls (V.class_of v)

let test_array_bounds () =
  let cls =
    B.class_ "Oob"
      [
        B.meth ~flags:static "f" "()I"
          [ B.Const 3; B.Newarray; B.Const 5; B.Iaload; B.Ireturn ];
        B.meth ~flags:static "neg" "()V"
          [ B.Const (-1); B.Newarray; B.Pop; B.Return ];
      ]
  in
  let vm = vm_with [ cls ] in
  expect_throw vm "Oob" "f" "()I" [] "java/lang/ArrayIndexOutOfBoundsException";
  expect_throw vm "Oob" "neg" "()V" [] "java/lang/NegativeArraySizeException"

(* --- Exceptions. --- *)

let test_throw_catch () =
  let cls =
    B.class_ "TC"
      [
        B.meth ~flags:static "main" "()V"
          ~handlers:[ ("try", "end", "catch", Some "java/lang/Exception") ]
          [
            B.Label "try";
            B.New "java/lang/Exception";
            B.Dup;
            B.Push_str "boom";
            B.Invokespecial
              ("java/lang/Exception", "<init>", "(Ljava/lang/String;)V");
            B.Athrow;
            B.Label "end";
            B.Return;
            B.Label "catch";
            B.Invokevirtual
              ("java/lang/Throwable", "getMessage", "()Ljava/lang/String;");
            B.Astore 0;
            B.Getstatic ("java/lang/System", "out", "Ljava/io/OutputStream;");
            B.Aload 0;
            B.Invokevirtual
              ("java/io/OutputStream", "println", "(Ljava/lang/String;)V");
            B.Return;
          ];
      ]
  in
  run_main_expect_output [ cls ] "TC" "boom\n"

let test_catch_subtype_only () =
  (* Handler for ArithmeticException must not catch NPE. *)
  let cls =
    B.class_ "Sel"
      [
        B.meth ~flags:static "f" "()V"
          ~handlers:
            [ ("try", "end", "catch", Some "java/lang/ArithmeticException") ]
          [
            B.Label "try";
            B.Null;
            B.Getfield ("Counter", "n", "I");
            B.Pop;
            B.Label "end";
            B.Return;
            B.Label "catch";
            B.Pop;
            B.Return;
          ];
      ]
  in
  let vm = vm_with [ cls; counter_cls ] in
  expect_throw vm "Sel" "f" "()V" [] "java/lang/NullPointerException"

let test_exception_unwinds_frames () =
  let classes =
    [
      B.class_ "Deep"
        [
          B.meth ~flags:static "inner" "()V"
            [ B.Const 1; B.Const 0; B.Div; B.Pop; B.Return ];
          B.meth ~flags:static "middle" "()V"
            [ B.Invokestatic ("Deep", "inner", "()V"); B.Return ];
          B.meth ~flags:static "outer" "()I"
            ~handlers:[ ("try", "end", "catch", None) ]
            [
              B.Label "try";
              B.Invokestatic ("Deep", "middle", "()V");
              B.Label "end";
              B.Const 0;
              B.Ireturn;
              B.Label "catch";
              B.Pop;
              B.Const 99;
              B.Ireturn;
            ];
        ];
    ]
  in
  let vm = vm_with classes in
  match call_static vm "Deep" "outer" "()I" [] with
  | Some (V.Int 99l) -> ()
  | _ -> fail "handler in outer frame did not catch"

let test_div_by_zero_uncaught () =
  let cls =
    B.class_ "Dz"
      [ B.meth ~flags:static "f" "()I" [ B.Const 1; B.Const 0; B.Div; B.Ireturn ] ]
  in
  let vm = vm_with [ cls ] in
  expect_throw vm "Dz" "f" "()I" [] "java/lang/ArithmeticException"

let test_checkcast_instanceof () =
  let vm = vm_with animal_classes in
  let mk cls =
    let o = Jvm.Heap.alloc_obj vm.Jvm.Vmstate.heap ~cls ~field_descs:[] in
    V.Obj o
  in
  let reg = vm.Jvm.Vmstate.reg in
  check Alcotest.bool "Dog <= Animal" true
    (Jvm.Classreg.is_subclass reg ~sub:"Dog" ~super:"Animal");
  check Alcotest.bool "Dog <= Object" true
    (Jvm.Classreg.is_subclass reg ~sub:"Dog" ~super:"java/lang/Object");
  check Alcotest.bool "Animal not <= Dog" false
    (Jvm.Classreg.is_subclass reg ~sub:"Animal" ~super:"Dog");
  check Alcotest.bool "Cat not <= Dog" false
    (Jvm.Classreg.is_subclass reg ~sub:"Cat" ~super:"Dog");
  ignore (mk "Dog");
  (* checkcast failure through bytecode *)
  let cls =
    B.class_ "CastFail"
      [
        B.meth ~flags:static "f" "()V"
          [
            B.New "Cat";
            B.Dup;
            B.Invokespecial ("Cat", "<init>", "()V");
            B.Checkcast "Dog";
            B.Pop;
            B.Return;
          ];
      ]
  in
  Jvm.Classreg.register reg cls;
  expect_throw vm "CastFail" "f" "()V" [] "java/lang/ClassCastException"

let test_stack_overflow () =
  let cls =
    B.class_ "Rec"
      [
        B.meth ~flags:static "f" "()V"
          [ B.Invokestatic ("Rec", "f", "()V"); B.Return ];
      ]
  in
  let vm = vm_with [ cls ] in
  expect_throw vm "Rec" "f" "()V" [] "java/lang/StackOverflowError"

(* --- Class loading. --- *)

let test_provider_loading () =
  let lib_cls =
    B.class_ "Lib"
      [ B.meth ~flags:static "answer" "()I" [ B.Const 42; B.Ireturn ] ]
  in
  let bytes = Bytecode.Encode.class_to_bytes lib_cls in
  let requested = ref [] in
  let provider name =
    requested := name :: !requested;
    if name = "Lib" then Some bytes else None
  in
  let vm = Jvm.Bootlib.fresh_vm ~provider () in
  let user =
    B.class_ "User"
      [
        B.meth ~flags:static "f" "()I"
          [ B.Invokestatic ("Lib", "answer", "()I"); B.Ireturn ];
      ]
  in
  Jvm.Classreg.register vm.Jvm.Vmstate.reg user;
  (match call_static vm "User" "f" "()I" [] with
  | Some (V.Int 42l) -> ()
  | _ -> fail "provider class not used");
  check Alcotest.bool "Lib requested" true (List.mem "Lib" !requested);
  check Alcotest.int "bytes accounted" (String.length bytes)
    vm.Jvm.Vmstate.reg.Jvm.Classreg.bytes_fetched

let test_missing_class () =
  let vm = Jvm.Bootlib.fresh_vm () in
  let user =
    B.class_ "User2"
      [
        B.meth ~flags:static "f" "()V"
          [ B.Invokestatic ("Nowhere", "g", "()V"); B.Return ];
      ]
  in
  Jvm.Classreg.register vm.Jvm.Vmstate.reg user;
  expect_throw vm "User2" "f" "()V" [] "java/lang/NoClassDefFoundError"

let test_on_load_hook_rejects () =
  let evil =
    B.class_ "Evil" [ B.meth ~flags:static "f" "()V" [ B.Return ] ]
  in
  let bytes = Bytecode.Encode.class_to_bytes evil in
  let provider name = if name = "Evil" then Some bytes else None in
  let vm = Jvm.Bootlib.fresh_vm ~provider () in
  Jvm.Classreg.set_on_load vm.Jvm.Vmstate.reg (fun cf ->
      raise
        (Jvm.Classreg.Load_rejected
           { cls = cf.CF.name; reason = "rejected by local policy" }));
  let user =
    B.class_ "User3"
      [
        B.meth ~flags:static "f" "()V"
          [ B.Invokestatic ("Evil", "f", "()V"); B.Return ];
      ]
  in
  Jvm.Classreg.register vm.Jvm.Vmstate.reg user;
  expect_throw vm "User3" "f" "()V" [] "java/lang/VerifyError"

(* --- Natives. --- *)

let test_string_natives () =
  let cls =
    B.class_ "Str"
      [
        B.meth ~flags:static "f" "()Ljava/lang/String;"
          [
            B.Push_str "abc";
            B.Push_str "def";
            B.Invokevirtual
              ( "java/lang/String",
                "concat",
                "(Ljava/lang/String;)Ljava/lang/String;" );
            B.Const 1;
            B.Const 5;
            B.Invokevirtual ("java/lang/String", "substring", "(II)Ljava/lang/String;");
            B.Areturn;
          ];
      ]
  in
  let vm = vm_with [ cls ] in
  match call_static vm "Str" "f" "()Ljava/lang/String;" [] with
  | Some (V.Str "bcde") -> ()
  | Some v -> fail ("got " ^ V.to_string v)
  | None -> fail "no result"

let test_properties_and_files () =
  let vm = Jvm.Bootlib.fresh_vm () in
  Hashtbl.replace vm.Jvm.Vmstate.props "user.name" "egs";
  Hashtbl.replace vm.Jvm.Vmstate.files "/etc/passwd" "root:x";
  let cls =
    B.class_ "PF"
      [
        B.meth ~flags:static "prop" "()Ljava/lang/String;"
          [
            B.Push_str "user.name";
            B.Invokestatic
              ( "java/lang/System",
                "getProperty",
                "(Ljava/lang/String;)Ljava/lang/String;" );
            B.Areturn;
          ];
        B.meth ~flags:static "readByte" "()I"
          [
            B.New "java/io/FileInputStream";
            B.Dup;
            B.Push_str "/etc/passwd";
            B.Invokespecial
              ("java/io/FileInputStream", "<init>", "(Ljava/lang/String;)V");
            B.Invokevirtual ("java/io/FileInputStream", "read", "()I");
            B.Ireturn;
          ];
      ]
  in
  Jvm.Classreg.register vm.Jvm.Vmstate.reg cls;
  (match call_static vm "PF" "prop" "()Ljava/lang/String;" [] with
  | Some (V.Str "egs") -> ()
  | _ -> fail "property");
  match call_static vm "PF" "readByte" "()I" [] with
  | Some (V.Int n) -> check Alcotest.int32 "first byte" (Int32.of_int (Char.code 'r')) n
  | _ -> fail "read"

let test_security_hook_invoked () =
  let vm = Jvm.Bootlib.fresh_vm () in
  let ops = ref [] in
  vm.Jvm.Vmstate.security_hook <- Some (fun op -> ops := op :: !ops);
  Hashtbl.replace vm.Jvm.Vmstate.props "k" "v";
  let cls =
    B.class_ "Sec"
      [
        B.meth ~flags:static "f" "()V"
          [
            B.Push_str "k";
            B.Invokestatic
              ( "java/lang/System",
                "getProperty",
                "(Ljava/lang/String;)Ljava/lang/String;" );
            B.Pop;
            B.Return;
          ];
      ]
  in
  Jvm.Classreg.register vm.Jvm.Vmstate.reg cls;
  ignore (call_static vm "Sec" "f" "()V" []);
  check (Alcotest.list Alcotest.string) "hook saw op" [ "property.get" ] !ops

let test_security_hook_denies () =
  let vm = Jvm.Bootlib.fresh_vm () in
  vm.Jvm.Vmstate.security_hook <-
    Some (fun op -> Jvm.Vmstate.throw vm ~cls:Jvm.Vmstate.c_security ~message:op);
  Hashtbl.replace vm.Jvm.Vmstate.files "/secret" "s3cret";
  let cls =
    B.class_ "Sec2"
      [
        B.meth ~flags:static "f" "()V"
          [
            B.New "java/io/FileInputStream";
            B.Dup;
            B.Push_str "/secret";
            B.Invokespecial
              ("java/io/FileInputStream", "<init>", "(Ljava/lang/String;)V");
            B.Pop;
            B.Return;
          ];
      ]
  in
  Jvm.Classreg.register vm.Jvm.Vmstate.reg cls;
  expect_throw vm "Sec2" "f" "()V" [] "java/lang/SecurityException"

let test_math_integer_stringbuilder () =
  let vm = Jvm.Bootlib.fresh_vm () in
  let cls =
    B.class_ "Lib"
      [
        B.meth ~flags:static "m" "()I"
          [
            B.Const (-5);
            B.Invokestatic ("java/lang/Math", "abs", "(I)I");
            B.Const 3;
            B.Invokestatic ("java/lang/Math", "max", "(II)I");
            B.Const 2;
            B.Invokestatic ("java/lang/Math", "min", "(II)I");
            B.Ireturn;
          ];
        B.meth ~flags:static "p" "()I"
          [
            B.Push_str " 42 ";
            B.Invokestatic ("java/lang/Integer", "parseInt", "(Ljava/lang/String;)I");
            B.Ireturn;
          ];
        B.meth ~flags:static "bad" "()I"
          [
            B.Push_str "nope";
            B.Invokestatic ("java/lang/Integer", "parseInt", "(Ljava/lang/String;)I");
            B.Ireturn;
          ];
        B.meth ~flags:static "sb" "()Ljava/lang/String;"
          [
            B.New "java/lang/StringBuilder";
            B.Dup;
            B.Invokespecial ("java/lang/StringBuilder", "<init>", "()V");
            B.Push_str "n=";
            B.Invokevirtual
              ( "java/lang/StringBuilder",
                "append",
                "(Ljava/lang/String;)Ljava/lang/StringBuilder;" );
            B.Const 7;
            B.Invokevirtual
              ("java/lang/StringBuilder", "appendInt", "(I)Ljava/lang/StringBuilder;");
            B.Invokevirtual
              ("java/lang/StringBuilder", "toString", "()Ljava/lang/String;");
            B.Areturn;
          ];
      ]
  in
  Jvm.Classreg.register vm.Jvm.Vmstate.reg cls;
  (match call_static vm "Lib" "m" "()I" [] with
  | Some (V.Int 2l) -> ()
  | _ -> fail "math chain");
  (match call_static vm "Lib" "p" "()I" [] with
  | Some (V.Int 42l) -> ()
  | _ -> fail "parseInt");
  expect_throw vm "Lib" "bad" "()I" [] "java/lang/NumberFormatException";
  match call_static vm "Lib" "sb" "()Ljava/lang/String;" [] with
  | Some (V.Str "n=7") -> ()
  | Some v -> fail ("stringbuilder: " ^ V.to_string v)
  | None -> fail "stringbuilder: no result"

let test_random_lcg () =
  let vm = Jvm.Bootlib.fresh_vm () in
  let cls =
    B.class_ "R"
      [
        B.meth ~flags:static "f" "(I)I"
          [
            B.New "java/util/Random";
            B.Dup;
            B.Const 12345;
            B.Invokespecial ("java/util/Random", "<init>", "(I)V");
            B.Astore 1;
            B.Aload 1;
            B.Iload 0;
            B.Invokevirtual ("java/util/Random", "next", "(I)I");
            B.Ireturn;
          ];
      ]
  in
  Jvm.Classreg.register vm.Jvm.Vmstate.reg cls;
  for bound = 1 to 20 do
    match call_static vm "R" "f" "(I)I" [ V.Int (Int32.of_int bound) ] with
    | Some (V.Int n) ->
      let n = Int32.to_int n in
      check Alcotest.bool
        (Printf.sprintf "0 <= %d < %d" n bound)
        true
        (n >= 0 && n < bound)
    | _ -> fail "no result"
  done

(* --- Garbage collection. --- *)

let test_gc_reachability () =
  let keeper =
    B.class_ "Keeper"
      ~fields:[ B.field ~flags:static "kept" "Ljava/lang/Object;" ]
      [
        (* allocate two objects; store one in a static, drop the other *)
        B.meth ~flags:static "churn" "()V"
          [
            B.New "java/lang/Object";
            B.Dup;
            B.Invokespecial ("java/lang/Object", "<init>", "()V");
            B.Putstatic ("Keeper", "kept", "Ljava/lang/Object;");
            B.New "java/lang/Object";
            B.Dup;
            B.Invokespecial ("java/lang/Object", "<init>", "()V");
            B.Pop;
            B.Return;
          ];
      ]
  in
  let vm = vm_with [ keeper ] in
  ignore (call_static vm "Keeper" "churn" "()V" []);
  let before = vm.Jvm.Vmstate.heap.Jvm.Heap.objects_allocated in
  check Alcotest.bool "allocated at least 2" true (before >= 2);
  let st = Jvm.Gc.collect vm in
  (* one object survives through the static root, one-plus dies
     (System.out's stream object also survives) *)
  check Alcotest.bool "collected the dropped object" true
    (st.Jvm.Gc.collected_objects >= 1);
  check Alcotest.bool "kept the rooted object" true (st.Jvm.Gc.live_objects >= 2);
  check Alcotest.bool "bytes reclaimed" true (st.Jvm.Gc.collected_bytes > 0);
  (* a second collection finds nothing new *)
  let st2 = Jvm.Gc.collect vm in
  check Alcotest.int "idempotent" 0 st2.Jvm.Gc.collected_objects

let test_gc_traces_through_structures () =
  let vm = vm_with [] in
  let heap = vm.Jvm.Vmstate.heap in
  (* chain: extra root -> ref array -> object -> field -> int array *)
  let iarr = Jvm.Heap.alloc_int_array heap 8 in
  let o =
    Jvm.Heap.alloc_obj heap ~cls:"java/lang/Object"
      ~field_descs:[ ("payload", "[I") ]
  in
  Hashtbl.replace o.V.fields "payload" (V.Arr_int iarr);
  let rarr = Jvm.Heap.alloc_ref_array heap ~elem:"java/lang/Object" 4 in
  rarr.V.refs.(2) <- V.Obj o;
  let garbage = Jvm.Heap.alloc_obj heap ~cls:"java/lang/Object" ~field_descs:[] in
  ignore garbage;
  let st = Jvm.Gc.collect ~extra_roots:[ V.Arr_ref rarr ] vm in
  (* rarr + o + iarr survive; garbage dies *)
  check Alcotest.bool "live arrays >= 2" true (st.Jvm.Gc.live_arrays >= 2);
  check Alcotest.bool "live objects >= 1" true (st.Jvm.Gc.live_objects >= 1);
  check Alcotest.bool "garbage collected" true (st.Jvm.Gc.collected_objects >= 1);
  (* cycles do not trap the tracer *)
  let a = Jvm.Heap.alloc_obj heap ~cls:"java/lang/Object" ~field_descs:[ ("n", "Ljava/lang/Object;") ] in
  let b = Jvm.Heap.alloc_obj heap ~cls:"java/lang/Object" ~field_descs:[ ("n", "Ljava/lang/Object;") ] in
  Hashtbl.replace a.V.fields "n" (V.Obj b);
  Hashtbl.replace b.V.fields "n" (V.Obj a);
  let st = Jvm.Gc.collect ~extra_roots:[ V.Obj a ] vm in
  check Alcotest.bool "cycle survives when rooted" true (st.Jvm.Gc.live_objects >= 2);
  let st = Jvm.Gc.collect vm in
  check Alcotest.bool "cycle dies when unrooted" true
    (st.Jvm.Gc.collected_objects >= 2)

let test_gc_after_workload () =
  (* The database kernel allocates an Account per call; after the run
     none are rooted, so the collector reclaims them all. *)
  let app = Workloads.Apps.build_small Workloads.Apps.instantdb in
  let vm = vm_with app.Workloads.Appgen.classes in
  (match Jvm.Interp.run_main vm app.Workloads.Appgen.entry with
  | Ok () -> ()
  | Error e -> fail (Jvm.Interp.describe_throwable e));
  let allocated = vm.Jvm.Vmstate.heap.Jvm.Heap.objects_allocated in
  check Alcotest.bool "workload allocated objects" true (allocated > 100);
  let st = Jvm.Gc.collect vm in
  check Alcotest.bool "most of the heap was garbage" true
    (st.Jvm.Gc.collected_objects > allocated / 2)

(* --- Faults on unverifiable code. --- *)

let expect_fault vm cls name desc args =
  match Jvm.Interp.invoke vm ~cls ~name ~desc args with
  | _ -> fail "expected Runtime_fault"
  | exception Jvm.Vmstate.Runtime_fault _ -> ()

let test_fault_type_confusion () =
  let cls =
    B.class_ "Bad1"
      [
        B.meth ~flags:static "f" "()I"
          [ B.Push_str "not an int"; B.Const 1; B.Add; B.Ireturn ];
      ]
  in
  let vm = vm_with [ cls ] in
  expect_fault vm "Bad1" "f" "()I" []

let test_fault_stack_underflow () =
  let cls =
    B.class_ "Bad2" [ B.meth ~flags:static "f" "()I" [ B.Add; B.Ireturn ] ]
  in
  let vm = vm_with [ cls ] in
  expect_fault vm "Bad2" "f" "()I" []

let test_fault_falls_off_end () =
  let cls =
    { (B.class_ "Bad3" [ B.meth ~flags:static "f" "()V" [ B.Return ] ]) with
      CF.methods =
        [
          {
            CF.m_name = "f";
            m_desc = "()V";
            m_flags = static;
            m_code =
              Some
                {
                  CF.max_stack = 1;
                  max_locals = 1;
                  instrs = [| Bytecode.Instr.Nop |];
                  handlers = [];
                };
          };
        ];
    }
  in
  let vm = vm_with [ cls ] in
  expect_fault vm "Bad3" "f" "()V" []

let test_budget () =
  let vm = Jvm.Bootlib.fresh_vm ~budget:1000L () in
  let cls =
    B.class_ "Spin"
      [ B.meth ~flags:static "f" "()V" [ B.Label "l"; B.Goto "l" ] ]
  in
  Jvm.Classreg.register vm.Jvm.Vmstate.reg cls;
  match call_static vm "Spin" "f" "()V" [] with
  | _ -> fail "expected budget exhaustion"
  | exception Jvm.Vmstate.Budget_exhausted -> ()

let test_instr_count_accumulates () =
  let vm = vm_with [ gcd_cls ] in
  let before = vm.Jvm.Vmstate.instr_count in
  ignore (call_static vm "Gcd" "gcd" "(II)I" [ V.Int 252l; V.Int 105l ]);
  check Alcotest.bool "instructions counted" true
    (vm.Jvm.Vmstate.instr_count > before)

let () =
  Alcotest.run "jvm"
    [
      ( "basics",
        [
          Alcotest.test_case "hello world" `Quick test_hello;
          Alcotest.test_case "gcd loop" `Quick test_gcd;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic_ops;
          Alcotest.test_case "int32 wraparound" `Quick test_int32_wraparound;
          Alcotest.test_case "tableswitch" `Quick test_tableswitch;
          Alcotest.test_case "jsr/ret" `Quick test_jsr_ret;
        ] );
      ( "objects",
        [
          Alcotest.test_case "virtual dispatch" `Quick test_virtual_dispatch;
          Alcotest.test_case "instance fields" `Quick test_instance_fields;
          Alcotest.test_case "clinit once" `Quick test_clinit_runs_once;
          Alcotest.test_case "inherited fields" `Quick
            test_inherited_fields_visible;
          Alcotest.test_case "checkcast/instanceof" `Quick
            test_checkcast_instanceof;
          Alcotest.test_case "interface dispatch" `Quick
            test_interface_dispatch;
        ] );
      ( "arrays",
        [
          Alcotest.test_case "alloc/fill/sum" `Quick test_arrays;
          Alcotest.test_case "bounds" `Quick test_array_bounds;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "throw/catch" `Quick test_throw_catch;
          Alcotest.test_case "catch subtype only" `Quick
            test_catch_subtype_only;
          Alcotest.test_case "unwinds frames" `Quick
            test_exception_unwinds_frames;
          Alcotest.test_case "div by zero" `Quick test_div_by_zero_uncaught;
          Alcotest.test_case "stack overflow" `Quick test_stack_overflow;
        ] );
      ( "loading",
        [
          Alcotest.test_case "provider" `Quick test_provider_loading;
          Alcotest.test_case "missing class" `Quick test_missing_class;
          Alcotest.test_case "on_load rejects" `Quick test_on_load_hook_rejects;
        ] );
      ( "natives",
        [
          Alcotest.test_case "string ops" `Quick test_string_natives;
          Alcotest.test_case "properties and files" `Quick
            test_properties_and_files;
          Alcotest.test_case "security hook invoked" `Quick
            test_security_hook_invoked;
          Alcotest.test_case "security hook denies" `Quick
            test_security_hook_denies;
          Alcotest.test_case "random lcg" `Quick test_random_lcg;
          Alcotest.test_case "math/integer/stringbuilder" `Quick
            test_math_integer_stringbuilder;
        ] );
      ( "gc",
        [
          Alcotest.test_case "reachability" `Quick test_gc_reachability;
          Alcotest.test_case "traces structures and cycles" `Quick
            test_gc_traces_through_structures;
          Alcotest.test_case "reclaims workload garbage" `Quick
            test_gc_after_workload;
        ] );
      ( "faults",
        [
          Alcotest.test_case "type confusion" `Quick test_fault_type_confusion;
          Alcotest.test_case "stack underflow" `Quick
            test_fault_stack_underflow;
          Alcotest.test_case "falls off end" `Quick test_fault_falls_off_end;
          Alcotest.test_case "budget" `Quick test_budget;
          Alcotest.test_case "instruction counting" `Quick
            test_instr_count_accumulates;
        ] );
    ]
