(* Tests for the remote monitoring service: audit chain, console
   handshake and bans, instrumentation filters, profiler call graphs
   and first-use traces. *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile

let check = Alcotest.check
let fail = Alcotest.fail
let static = [ CF.Public; CF.Static ]

(* --- Audit log. --- *)

let test_audit_chain_verifies () =
  let log = Monitor.Audit.create () in
  for i = 1 to 20 do
    Monitor.Audit.append log ~time:(Int64.of_int (i * 100)) ~session:i
      ~kind:"app.event"
      ~detail:(Printf.sprintf "event %d" i)
  done;
  check Alcotest.int "count" 20 (Monitor.Audit.count log);
  check Alcotest.bool "chain verifies" true (Monitor.Audit.verify_chain log)

let test_audit_tamper_detected () =
  let log = Monitor.Audit.create () in
  Monitor.Audit.append log ~time:1L ~session:1 ~kind:"a" ~detail:"x";
  Monitor.Audit.append log ~time:2L ~session:1 ~kind:"b" ~detail:"y";
  Monitor.Audit.append log ~time:3L ~session:1 ~kind:"c" ~detail:"z";
  (* Rebuild a tampered log: reuse the events but alter the middle
     detail, keeping the recorded seals. *)
  let tampered = Monitor.Audit.create () in
  List.iteri
    (fun i ev ->
      let detail =
        if i = 1 then "FORGED" else ev.Monitor.Audit.ev_detail
      in
      Monitor.Audit.append tampered ~time:ev.Monitor.Audit.ev_time
        ~session:ev.Monitor.Audit.ev_session ~kind:ev.Monitor.Audit.ev_kind
        ~detail)
    (Monitor.Audit.events log);
  (* A freshly built chain over different data diverges from the
     original seals. *)
  let orig = List.map (fun e -> e.Monitor.Audit.ev_chain) (Monitor.Audit.events log) in
  let forged = List.map (fun e -> e.Monitor.Audit.ev_chain) (Monitor.Audit.events tampered) in
  check Alcotest.bool "seals diverge" true (orig <> forged)

let test_audit_filter_kind () =
  let log = Monitor.Audit.create () in
  Monitor.Audit.append log ~time:1L ~session:1 ~kind:"a" ~detail:"1";
  Monitor.Audit.append log ~time:2L ~session:1 ~kind:"b" ~detail:"2";
  Monitor.Audit.append log ~time:3L ~session:1 ~kind:"a" ~detail:"3";
  check Alcotest.int "kind filter" 2
    (List.length (Monitor.Audit.filter_kind log "a"))

let test_audit_serialization () =
  let log = Monitor.Audit.create () in
  for i = 1 to 10 do
    Monitor.Audit.append log ~time:(Int64.of_int i) ~session:i ~kind:"k"
      ~detail:(string_of_int i)
  done;
  let bytes = Monitor.Audit.to_bytes log in
  let back = Monitor.Audit.of_bytes bytes in
  check Alcotest.int "count survives" 10 (Monitor.Audit.count back);
  check Alcotest.bool "chain survives" true (Monitor.Audit.verify_chain back);
  (* tamper with one byte in the payload region: import refuses *)
  let b = Bytes.of_string bytes in
  Bytes.set b (Bytes.length b / 2)
    (Char.chr (Char.code (Bytes.get b (Bytes.length b / 2)) lxor 1));
  match Monitor.Audit.of_bytes (Bytes.to_string b) with
  | _ -> fail "tampered log accepted"
  | exception Monitor.Audit.Corrupt_log _ -> ()

(* --- Console. --- *)

let test_handshake_assigns_sessions () =
  let console = Monitor.Console.create () in
  let c1 =
    Monitor.Console.handshake console ~user:"alice" ~hardware:"x86"
      ~native_format:"x86" ~vm_version:"1" ~time:0L
  in
  let c2 =
    Monitor.Console.handshake console ~user:"bob" ~hardware:"alpha"
      ~native_format:"alpha" ~vm_version:"1" ~time:1L
  in
  check Alcotest.bool "distinct sessions" true
    (c1.Monitor.Console.session <> c2.Monitor.Console.session);
  check Alcotest.int "clients tracked" 2
    (List.length (Monitor.Console.clients console));
  check
    (Alcotest.list Alcotest.string)
    "native formats for the compiler" [ "alpha"; "x86" ]
    (Monitor.Console.native_formats console);
  check Alcotest.bool "handshake audited" true
    (List.length
       (Monitor.Audit.filter_kind (Monitor.Console.audit console)
          "client.handshake")
    = 2)

let test_ban_list () =
  let console = Monitor.Console.create () in
  Monitor.Console.ban_app console ~app:"evil/Miner" ~reason:"rogue" ~time:5L;
  check (Alcotest.option Alcotest.string) "banned" (Some "rogue")
    (Monitor.Console.is_banned console "evil/Miner");
  check (Alcotest.option Alcotest.string) "others fine" None
    (Monitor.Console.is_banned console "good/App")

(* --- Instrumentation + profiler. --- *)

let fib_cls =
  B.class_ "Fib"
    [
      B.meth ~flags:static "fib" "(I)I"
        [
          B.Iload 0;
          B.Const 2;
          B.If_icmp (Bytecode.Instr.Lt, "base");
          B.Iload 0;
          B.Const 1;
          B.Sub;
          B.Invokestatic ("Fib", "fib", "(I)I");
          B.Iload 0;
          B.Const 2;
          B.Sub;
          B.Invokestatic ("Fib", "fib", "(I)I");
          B.Add;
          B.Ireturn;
          B.Label "base";
          B.Iload 0;
          B.Ireturn;
        ];
      B.meth ~flags:static "main" "()V"
        [
          B.Const 8;
          B.Invokestatic ("Fib", "fib", "(I)I");
          B.Pop;
          B.Invokestatic ("Fib", "helper", "()V");
          B.Return;
        ];
      B.meth ~flags:static "helper" "()V" [ B.Return ];
      B.meth ~flags:static "unused" "()V" [ B.Return ];
    ]

let test_profiler_call_graph () =
  let instrumented =
    Monitor.Instrument.instrument_class
      ~runtime_class:Monitor.Profiler.profiler_class fib_cls
  in
  let vm = Jvm.Bootlib.fresh_vm () in
  let prof = Monitor.Profiler.install vm () in
  Jvm.Classreg.register vm.Jvm.Vmstate.reg instrumented;
  (match Jvm.Interp.run_main vm "Fib" with
  | Ok () -> ()
  | Error e -> fail (Jvm.Interp.describe_throwable e));
  let graph = Monitor.Profiler.call_graph prof in
  let edge a b =
    List.exists (fun (x, y, n) -> x = a && y = b && n > 0) graph
  in
  check Alcotest.bool "main -> fib" true (edge "Fib.main()V" "Fib.fib(I)I");
  check Alcotest.bool "fib -> fib (recursion)" true
    (edge "Fib.fib(I)I" "Fib.fib(I)I");
  check Alcotest.bool "main -> helper" true (edge "Fib.main()V" "Fib.helper()V");
  (* fib(8) invokes fib 1 + recursive times; exact count for the naive
     recursion is 67. *)
  check Alcotest.int "fib invocation count" 67
    (Monitor.Profiler.invocation_count prof "Fib.fib(I)I");
  check Alcotest.int "unused never invoked" 0
    (Monitor.Profiler.invocation_count prof "Fib.unused()V")

let test_first_use_order () =
  let instrumented =
    Monitor.Instrument.instrument_class
      ~runtime_class:Monitor.Profiler.profiler_class fib_cls
  in
  let vm = Jvm.Bootlib.fresh_vm () in
  let prof = Monitor.Profiler.install vm () in
  Jvm.Classreg.register vm.Jvm.Vmstate.reg instrumented;
  ignore (Jvm.Interp.run_main vm "Fib");
  match Monitor.Profiler.first_use_order prof with
  | "Fib.main()V" :: "Fib.fib(I)I" :: "Fib.helper()V" :: _ -> ()
  | order -> fail ("unexpected order: " ^ String.concat ", " order)

let test_audit_instrumentation_reaches_console () =
  let counters = Monitor.Instrument.fresh_counters () in
  let instrumented =
    Monitor.Instrument.instrument_class ~counters
      ~runtime_class:Monitor.Profiler.auditor_class fib_cls
  in
  check Alcotest.bool "probes inserted" true
    (counters.Monitor.Instrument.probes_inserted > 0);
  let console = Monitor.Console.create () in
  let client =
    Monitor.Console.handshake console ~user:"u" ~hardware:"h"
      ~native_format:"x86" ~vm_version:"1" ~time:0L
  in
  let vm = Jvm.Bootlib.fresh_vm () in
  ignore
    (Monitor.Profiler.install vm ~console
       ~session:client.Monitor.Console.session ());
  Jvm.Classreg.register vm.Jvm.Vmstate.reg instrumented;
  ignore (Jvm.Interp.run_main vm "Fib");
  let audit = Monitor.Console.audit console in
  check Alcotest.bool "enter events" true
    (List.length (Monitor.Audit.filter_kind audit "method.enter") > 0);
  check Alcotest.bool "exit events" true
    (List.length (Monitor.Audit.filter_kind audit "method.exit") > 0);
  check Alcotest.bool "chain verifies" true (Monitor.Audit.verify_chain audit)

let test_instrumentation_preserves_output () =
  let app =
    B.class_ "Out"
      [
        B.meth ~flags:static "main" "()V"
          [
            B.Getstatic ("java/lang/System", "out", "Ljava/io/OutputStream;");
            B.Const 8;
            B.Invokestatic ("Fib", "fib", "(I)I");
            B.Invokevirtual ("java/io/OutputStream", "println", "(I)V");
            B.Return;
          ];
      ]
  in
  let run instrument =
    let vm = Jvm.Bootlib.fresh_vm () in
    ignore (Monitor.Profiler.install vm ());
    let classes = if instrument then
        List.map (Monitor.Instrument.instrument_class ~runtime_class:Monitor.Profiler.profiler_class) [ app; fib_cls ]
      else [ app; fib_cls ]
    in
    List.iter (Jvm.Classreg.register vm.Jvm.Vmstate.reg) classes;
    (match Jvm.Interp.run_main vm "Out" with
    | Ok () -> ()
    | Error e -> fail (Jvm.Interp.describe_throwable e));
    Jvm.Vmstate.output vm
  in
  check Alcotest.string "same output" (run false) (run true)

let test_sync_trace () =
  let locky =
    B.class_ "Locky"
      [
        B.meth ~flags:static "main" "()V"
          [
            B.New "java/lang/Object";
            B.Dup;
            B.Invokespecial ("java/lang/Object", "<init>", "()V");
            B.Astore 0;
            B.Aload 0;
            B.Monitorenter;
            B.Aload 0;
            B.Monitorexit;
            B.Return;
          ];
      ]
  in
  let instrumented =
    Monitor.Instrument.instrument_class
      ~runtime_class:Monitor.Profiler.profiler_class ~sync_trace:true locky
  in
  let vm = Jvm.Bootlib.fresh_vm () in
  let prof = Monitor.Profiler.install vm () in
  Jvm.Classreg.register vm.Jvm.Vmstate.reg instrumented;
  (match Jvm.Interp.run_main vm "Locky" with
  | Ok () -> ()
  | Error e -> fail (Jvm.Interp.describe_throwable e));
  check Alcotest.int "two sync sites traced" 2
    (Monitor.Profiler.sync_count prof "Locky.main()V")

let test_block_tracing () =
  let looper =
    B.class_ "Loopy"
      [
        B.meth ~flags:static "main" "()V"
          [
            B.Const 10;
            B.Istore 0;
            B.Label "top";
            B.Iload 0;
            B.If_z (Bytecode.Instr.Le, "done");
            B.Inc (0, -1);
            B.Goto "top";
            B.Label "done";
            B.Return;
          ];
      ]
  in
  let counters = Monitor.Instrument.fresh_counters () in
  let traced = Monitor.Instrument.trace_blocks ~counters looper in
  check Alcotest.bool "block probes inserted" true
    (counters.Monitor.Instrument.probes_inserted >= 3);
  let vm = Jvm.Bootlib.fresh_vm () in
  let prof = Monitor.Profiler.install vm () in
  Jvm.Classreg.register vm.Jvm.Vmstate.reg traced;
  (match Jvm.Interp.run_main vm "Loopy" with
  | Ok () -> ()
  | Error e -> fail (Jvm.Interp.describe_throwable e));
  (* entry block runs once; the loop-test block runs 11 times; the
     loop-body block runs 10 times *)
  check Alcotest.int "entry once" 1
    (Monitor.Profiler.block_count prof "Loopy.main()V@0");
  check Alcotest.int "loop test block" 11
    (Monitor.Profiler.block_count prof "Loopy.main()V@2");
  check Alcotest.int "loop body block" 10
    (Monitor.Profiler.block_count prof "Loopy.main()V@4");
  (* the hottest block tops the profile *)
  match Monitor.Profiler.block_profile prof with
  | (top, n) :: _ ->
    check Alcotest.string "hottest is the loop test" "Loopy.main()V@2" top;
    check Alcotest.int "hottest count" 11 n
  | [] -> fail "empty block profile"

(* An injected clock stamps events when callers omit ~time, so audit
   records can share the simulation's virtual timeline. *)
let test_injected_clock () =
  let now = ref 100L in
  let console = Monitor.Console.create ~clock:(fun () -> !now) () in
  let c =
    Monitor.Console.handshake console ~user:"u" ~hardware:"hw"
      ~native_format:"x86" ~vm_version:"1"
  in
  now := 250L;
  Monitor.Console.record_app_start console c ~app:"App";
  now := 400L;
  Monitor.Console.record_event console c ~time:999L ~kind:"k" ~detail:"d";
  let times =
    List.map
      (fun e -> e.Monitor.Audit.ev_time)
      (Monitor.Audit.events (Monitor.Console.audit console))
  in
  check (Alcotest.list Alcotest.int64) "clock vs explicit times"
    [ 100L; 250L; 999L ] times;
  check Alcotest.int64 "last_seen from explicit time" 999L c.Monitor.Console.last_seen

let () =
  Alcotest.run "monitor"
    [
      ( "audit",
        [
          Alcotest.test_case "chain verifies" `Quick test_audit_chain_verifies;
          Alcotest.test_case "tamper detected" `Quick test_audit_tamper_detected;
          Alcotest.test_case "filter by kind" `Quick test_audit_filter_kind;
          Alcotest.test_case "serialize/import" `Quick test_audit_serialization;
        ] );
      ( "console",
        [
          Alcotest.test_case "handshake" `Quick test_handshake_assigns_sessions;
          Alcotest.test_case "ban list" `Quick test_ban_list;
          Alcotest.test_case "injected clock" `Quick test_injected_clock;
        ] );
      ( "profiling",
        [
          Alcotest.test_case "call graph" `Quick test_profiler_call_graph;
          Alcotest.test_case "first-use order" `Quick test_first_use_order;
          Alcotest.test_case "audit to console" `Quick
            test_audit_instrumentation_reaches_console;
          Alcotest.test_case "output preserved" `Quick
            test_instrumentation_preserves_output;
          Alcotest.test_case "sync trace" `Quick test_sync_trace;
          Alcotest.test_case "block tracing" `Quick test_block_tracing;
        ] );
    ]
