(* Tests for the proxy infrastructure: the LRU cache, the
   parse-once pipeline (including the parse-per-service ablation and
   rejection handling), the simulated-time request path, and signing
   integration. *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile

let check = Alcotest.check
let fail = Alcotest.fail
let static = [ CF.Public; CF.Static ]

(* --- Cache. --- *)

let test_cache_lru_eviction () =
  let c = Proxy.Cache.create ~capacity:100 in
  Proxy.Cache.store c "a" (String.make 40 'a');
  Proxy.Cache.store c "b" (String.make 40 'b');
  check Alcotest.bool "a hit" true (Proxy.Cache.find c "a" <> None);
  (* c displaces the least recently used, which is now b *)
  Proxy.Cache.store c "c" (String.make 40 'c');
  check Alcotest.bool "b evicted" true (Proxy.Cache.find c "b" = None);
  check Alcotest.bool "a survives" true (Proxy.Cache.find c "a" <> None);
  check Alcotest.bool "evictions counted" true (c.Proxy.Cache.evictions >= 1)

let test_cache_disabled () =
  let c = Proxy.Cache.create ~capacity:0 in
  Proxy.Cache.store c "a" "xxx";
  check Alcotest.bool "nothing stored" true (Proxy.Cache.find c "a" = None)

let test_cache_oversized_not_stored () =
  let c = Proxy.Cache.create ~capacity:10 in
  Proxy.Cache.store c "big" (String.make 100 'x');
  check Alcotest.bool "not stored" true (Proxy.Cache.find c "big" = None)

let test_cache_restart_drops_not_evictions () =
  (* Regression: [drop_fraction] used to funnel through [evict_one],
     so a restart's cold-cache drop inflated the capacity-eviction
     statistic (and republished the occupancy gauges once per dropped
     entry). Restart drops are their own counter. *)
  let reg = Telemetry.default in
  Telemetry.reset reg;
  Telemetry.enable reg;
  Fun.protect
    ~finally:(fun () -> Telemetry.disable reg)
    (fun () ->
      let c = Proxy.Cache.create ~capacity:1000 in
      Proxy.Cache.store c "a" (String.make 100 'a');
      Proxy.Cache.store c "b" (String.make 100 'b');
      Proxy.Cache.store c "c" (String.make 100 'c');
      Proxy.Cache.store c "d" (String.make 100 'd');
      Proxy.Cache.drop_fraction c ~fraction:0.5;
      check Alcotest.int "half dropped" 2 (Proxy.Cache.size c);
      check Alcotest.int "restart drops counted" 2 c.Proxy.Cache.restart_drops;
      check Alcotest.int "evictions not conflated" 0 c.Proxy.Cache.evictions;
      check Alcotest.int64 "restart_drops counter" 2L
        (Telemetry.counter_value reg "cache.restart_drops");
      check Alcotest.int64 "no eviction counter noise" 0L
        (Telemetry.counter_value reg "cache.evictions");
      check Alcotest.int64 "occupancy gauge refreshed" 200L
        (Telemetry.gauge_value reg "cache.bytes_used");
      (* LRU entries go first: the oldest two are gone *)
      check Alcotest.bool "lru dropped first" true
        (Proxy.Cache.find c "a" = None
        && Proxy.Cache.find c "b" = None
        && Proxy.Cache.find c "c" <> None
        && Proxy.Cache.find c "d" <> None);
      Proxy.Cache.drop_fraction c ~fraction:1.0;
      check Alcotest.int "full drop empties" 0 (Proxy.Cache.size c);
      check Alcotest.int "full drop counted" 4 c.Proxy.Cache.restart_drops)

let test_cache_disabled_counts_miss () =
  (* Regression: [find] on a disabled cache (capacity 0) used to
     return early without counting, so cache-off runs reported a 0/0
     hit ratio instead of all-miss. *)
  let c = Proxy.Cache.create ~capacity:0 in
  check Alcotest.bool "no hit" true (Proxy.Cache.find c "a" = None);
  check Alcotest.bool "still no hit" true (Proxy.Cache.find c "b" = None);
  check Alcotest.int "misses counted" 2 c.Proxy.Cache.misses

let test_cache_oversize_skip_counter () =
  (* An entry bigger than the whole cache can never fit: it must be
     skipped and counted — not silently dropped after evicting every
     resident entry in a futile attempt to make room. *)
  let c = Proxy.Cache.create ~capacity:100 in
  Proxy.Cache.store c "small" (String.make 40 's');
  Proxy.Cache.store c "big" (String.make 200 'x');
  check Alcotest.bool "big skipped" true (Proxy.Cache.find c "big" = None);
  check Alcotest.bool "small survives" true (Proxy.Cache.find c "small" <> None);
  check Alcotest.int "skip counted" 1 c.Proxy.Cache.oversize_skips;
  check Alcotest.int "no eviction churn" 0 c.Proxy.Cache.evictions

(* --- Pipeline. --- *)

let hello =
  B.class_ "Hello"
    [
      B.meth ~flags:static "main" "()V"
        [
          B.Getstatic ("java/lang/System", "out", "Ljava/io/OutputStream;");
          B.Push_str "hi";
          B.Invokevirtual
            ("java/io/OutputStream", "println", "(Ljava/lang/String;)V");
          B.Return;
        ];
    ]

let boot_oracle = Verifier.Oracle.of_classes (Jvm.Bootlib.boot_classes ())

let filters () =
  [
    Verifier.Static_verifier.filter ~oracle:boot_oracle ();
    Monitor.Instrument.audit_filter ();
  ]

let test_pipeline_transforms () =
  let bytes = Bytecode.Encode.class_to_bytes hello in
  let out = Proxy.Pipeline.run (filters ()) bytes in
  check Alcotest.bool "accepted" true (out.Proxy.Pipeline.rejected = None);
  check Alcotest.int "parsed once" 1 out.Proxy.Pipeline.parses;
  let cf = Bytecode.Decode.class_of_bytes out.Proxy.Pipeline.out_bytes in
  check Alcotest.string "same class" "Hello" cf.CF.name;
  (* audit instrumentation grew the code *)
  check Alcotest.bool "instrumented" true
    (Bytecode.Classfile.instruction_count cf
    > Bytecode.Classfile.instruction_count hello)

let test_pipeline_rejects_into_error_class () =
  let bad =
    B.class_ "Bad" [ B.meth ~flags:static "f" "()I" [ B.Add; B.Ireturn ] ]
  in
  let out = Proxy.Pipeline.run (filters ()) (Bytecode.Encode.class_to_bytes bad) in
  (match out.Proxy.Pipeline.rejected with
  | Some ("verifier", _) -> ()
  | Some (f, _) -> fail ("rejected by unexpected filter " ^ f)
  | None -> fail "bad class accepted");
  (* The replacement class loads and raises VerifyError at init. *)
  let repl = Bytecode.Decode.class_of_bytes out.Proxy.Pipeline.out_bytes in
  check Alcotest.string "replacement keeps name" "Bad" repl.CF.name;
  let vm = Jvm.Bootlib.fresh_vm () in
  Jvm.Classreg.register vm.Jvm.Vmstate.reg repl;
  match Jvm.Interp.ensure_initialized vm "Bad" with
  | _ -> fail "expected VerifyError"
  | exception Jvm.Vmstate.Throw v ->
    check Alcotest.string "VerifyError" "java/lang/VerifyError"
      (Jvm.Value.class_of v)

let test_pipeline_malformed_input () =
  let out = Proxy.Pipeline.run (filters ()) "garbage not a class" in
  match out.Proxy.Pipeline.rejected with
  | Some ("decode", _) -> ()
  | _ -> fail "malformed input not rejected at decode"

let test_parse_per_service_rejection_parity () =
  (* Regression: the ablation used to name the replacement class after
     the *filter* and to omit the replacement's code-generation cost,
     so a rejection produced different bytes and cheaper totals than
     [run]. Both structures must degrade identically. *)
  let bad =
    B.class_ "Bad" [ B.meth ~flags:static "f" "()I" [ B.Add; B.Ireturn ] ]
  in
  let bytes = Bytecode.Encode.class_to_bytes bad in
  let shared = Proxy.Pipeline.run (filters ()) bytes in
  let naive = Proxy.Pipeline.run_parse_per_service (filters ()) bytes in
  (match (shared.Proxy.Pipeline.rejected, naive.Proxy.Pipeline.rejected) with
  | Some ("verifier", _), Some ("verifier", _) -> ()
  | _ -> fail "both structures must reject via the verifier");
  check Alcotest.string "identical replacement bytes"
    shared.Proxy.Pipeline.out_bytes naive.Proxy.Pipeline.out_bytes;
  check Alcotest.string "replacement keeps the rejected class's name" "Bad"
    (Bytecode.Decode.class_of_bytes naive.Proxy.Pipeline.out_bytes).CF.name;
  (* The verifier is the first filter, so parse/transform/generate work
     is identical — including generating the replacement. *)
  check Alcotest.int64 "replacement generate cost charged in both"
    (Proxy.Pipeline.total_cost shared)
    (Proxy.Pipeline.total_cost naive);
  (* Undecodable input degrades identically too. *)
  let s2 = Proxy.Pipeline.run (filters ()) "garbage not a class" in
  let n2 = Proxy.Pipeline.run_parse_per_service (filters ()) "garbage not a class" in
  check Alcotest.string "malformed: identical replacement bytes"
    s2.Proxy.Pipeline.out_bytes n2.Proxy.Pipeline.out_bytes;
  check Alcotest.int64 "malformed: identical total cost"
    (Proxy.Pipeline.total_cost s2) (Proxy.Pipeline.total_cost n2)

let test_parse_per_service_ablation () =
  let bytes = Bytecode.Encode.class_to_bytes hello in
  let shared = Proxy.Pipeline.run (filters ()) bytes in
  let naive = Proxy.Pipeline.run_parse_per_service (filters ()) bytes in
  check Alcotest.bool "same accepted output" true
    (naive.Proxy.Pipeline.rejected = None
    && String.equal shared.Proxy.Pipeline.out_bytes naive.Proxy.Pipeline.out_bytes);
  check Alcotest.int "one parse per service" 2 naive.Proxy.Pipeline.parses;
  check Alcotest.bool "naive costs more" true
    (Proxy.Pipeline.total_cost naive > Proxy.Pipeline.total_cost shared)

let test_pipeline_signs () =
  let key = Dsig.Sign.make_key ~key_id:"org" ~secret:"k" in
  let bytes = Bytecode.Encode.class_to_bytes hello in
  let out = Proxy.Pipeline.run ~signer:key (filters ()) bytes in
  let cf = Bytecode.Decode.class_of_bytes out.Proxy.Pipeline.out_bytes in
  check Alcotest.bool "signature valid" true
    (Dsig.Sign.verify [ key ] cf = Dsig.Sign.Valid)

let test_pipeline_encode_overflow_rejects () =
  (* Regression: an encoding-limit overflow inside code generation used
     to escape the pipeline as a raw [Io.Overflow] exception (and
     before that, to silently mask the oversized field). It must become
     a §3.1 rejection: the client receives an error-propagation
     replacement class naming the overflow. *)
  let bytes = Bytecode.Encode.class_to_bytes hello in
  (* a "service" that inflates a method body's locals past the u2 field *)
  let inflate_locals =
    Rewrite.Filter.make ~name:"inflate" (fun cf ->
        {
          cf with
          CF.methods =
            List.map
              (fun m ->
                match m.CF.m_code with
                | None -> m
                | Some c ->
                  { m with CF.m_code = Some { c with CF.max_locals = 70_000 } })
              cf.CF.methods;
        })
  in
  let out = Proxy.Pipeline.run [ inflate_locals ] bytes in
  (match out.Proxy.Pipeline.rejected with
  | Some ("encode", reason) ->
    check Alcotest.bool "reason names the field" true
      (String.length reason > 0)
  | Some (f, _) -> fail ("rejected by unexpected filter " ^ f)
  | None -> fail "overflowing class accepted");
  check Alcotest.string "replacement keeps name" "Hello"
    (Bytecode.Decode.class_of_bytes out.Proxy.Pipeline.out_bytes).CF.name;
  (* a string constant past the 64 KiB - 1 wire limit trips the same
     conversion *)
  let inflate_string =
    Rewrite.Filter.make ~name:"inflate" (fun cf ->
        let pool = Bytecode.Cp.Builder.of_pool cf.CF.pool in
        ignore (Bytecode.Cp.Builder.utf8 pool (String.make 66_000 's'));
        { cf with CF.pool = Bytecode.Cp.Builder.to_pool pool })
  in
  (match Proxy.Pipeline.run [ inflate_string ] bytes with
  | { Proxy.Pipeline.rejected = Some ("encode", _); _ } -> ()
  | _ -> fail "oversized string constant accepted");
  (* the ablation structure degrades identically *)
  let naive = Proxy.Pipeline.run_parse_per_service [ inflate_locals ] bytes in
  match naive.Proxy.Pipeline.rejected with
  | Some ("encode", _) ->
    check Alcotest.string "ablation: replacement keeps name" "Hello"
      (Bytecode.Decode.class_of_bytes naive.Proxy.Pipeline.out_bytes).CF.name
  | _ -> fail "ablation accepted overflowing class"

let test_pipeline_memo_transparent () =
  (* A memoized pipeline must be observationally identical to an
     unmemoized one: same outcome bytes and costs, and the same
     telemetry (the hit replays the first run's tape). *)
  let bytes = Bytecode.Encode.class_to_bytes hello in
  let fs = filters () in
  let reg = Telemetry.default in
  let snapshot () =
    ( Telemetry.counters reg,
      List.map
        (fun (k, (s : Telemetry.hist_stats)) -> (k, s.Telemetry.count, s.Telemetry.sum_us))
        (Telemetry.histograms reg),
      Telemetry.span_count reg )
  in
  Telemetry.reset reg;
  Telemetry.enable reg;
  (* Pin the duration histograms the way pinned benches do: with a sim
     clock attached, span durations are simulated time (zero for
     synchronous CPU work) rather than nondeterministic host time. *)
  let saved_sim = Telemetry.sim_clock reg in
  Telemetry.set_sim_clock reg (Some (fun () -> 0L));
  let plain1 = Proxy.Pipeline.run fs bytes in
  let plain2 = Proxy.Pipeline.run fs bytes in
  let reference = snapshot () in
  Telemetry.reset reg;
  let memo = Proxy.Pipeline.Memo.create () in
  let memo1 = Proxy.Pipeline.run ~memo fs bytes in
  let memo2 = Proxy.Pipeline.run ~memo fs bytes in
  let memoized = snapshot () in
  Telemetry.set_sim_clock reg saved_sim;
  Telemetry.disable reg;
  check Alcotest.int "one miss" 1 (Proxy.Pipeline.Memo.misses memo);
  check Alcotest.int "one hit" 1 (Proxy.Pipeline.Memo.hits memo);
  check Alcotest.string "identical bytes (1st)" plain1.Proxy.Pipeline.out_bytes
    memo1.Proxy.Pipeline.out_bytes;
  check Alcotest.string "identical bytes (hit)" plain2.Proxy.Pipeline.out_bytes
    memo2.Proxy.Pipeline.out_bytes;
  check Alcotest.int64 "identical cost"
    (Proxy.Pipeline.total_cost plain2)
    (Proxy.Pipeline.total_cost memo2);
  let rc, rh, rs = reference and mc, mh, ms = memoized in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int64))
    "identical counters" rc mc;
  check
    (Alcotest.list
       (Alcotest.triple Alcotest.string Alcotest.int Alcotest.int64))
    "identical histograms" rh mh;
  check Alcotest.int "identical span count" rs ms;
  (* a different filter stack bypasses the pinned memo instead of
     serving the wrong entry *)
  let other = Proxy.Pipeline.run ~memo [ Rewrite.Filter.identity ] bytes in
  check Alcotest.int "other stack misses the memo" 1
    (Proxy.Pipeline.Memo.misses memo);
  check Alcotest.bool "other stack really ran" true
    (String.equal other.Proxy.Pipeline.out_bytes bytes)

(* --- Wire protocol. --- *)

let test_http_roundtrip () =
  let req = Proxy.Httpwire.encode_request ~cls:"jlex/Main" () in
  check Alcotest.string "request decodes" "jlex/Main"
    (Proxy.Httpwire.decode_request req);
  let body = "\x00\x01binary body \xff" in
  let resp = Proxy.Httpwire.encode_response ~status:Proxy.Httpwire.Ok_200 ~body in
  let status, body' = Proxy.Httpwire.decode_response resp in
  check Alcotest.bool "status 200" true (status = Proxy.Httpwire.Ok_200);
  check Alcotest.string "body preserved" body body'

let test_http_serve () =
  let lookup = function "A" -> Some "aaa" | _ -> None in
  let ok = Proxy.Httpwire.serve lookup (Proxy.Httpwire.encode_request ~cls:"A" ()) in
  (match Proxy.Httpwire.decode_response ok with
  | Proxy.Httpwire.Ok_200, "aaa" -> ()
  | _ -> fail "expected 200 aaa");
  let missing =
    Proxy.Httpwire.serve lookup (Proxy.Httpwire.encode_request ~cls:"B" ())
  in
  (match Proxy.Httpwire.decode_response missing with
  | Proxy.Httpwire.Not_found_404, _ -> ()
  | _ -> fail "expected 404");
  match Proxy.Httpwire.decode_response (Proxy.Httpwire.serve lookup "junk") with
  | Proxy.Httpwire.Bad_request_400, _ -> ()
  | _ -> fail "expected 400"

let test_http_malformed () =
  List.iter
    (fun bad ->
      match Proxy.Httpwire.decode_response bad with
      | _ -> fail ("accepted: " ^ String.escaped bad)
      | exception Proxy.Httpwire.Bad_message _ -> ())
    [
      "";
      "DVM/1.0 200\r\n\r\n";
      "DVM/1.0 999\r\nContent-Length: 0\r\n\r\n";
      "DVM/1.0 200\r\nContent-Length: 5\r\n\r\nab";
      "HTTP/1.1 200\r\nContent-Length: 0\r\n\r\n";
    ]

let test_http_separator_enforced () =
  (* Regression: the decoder used to take the body as "4 bytes past
     the last header CRLF" without checking that those bytes were the
     blank-line separator, silently swallowing garbage framing. *)
  List.iter
    (fun bad ->
      match Proxy.Httpwire.decode_response bad with
      | _ -> fail ("accepted garbage framing: " ^ String.escaped bad)
      | exception Proxy.Httpwire.Bad_message _ -> ())
    [
      (* garbage where the blank line belongs; body length matches *)
      "DVM/1.0 200\r\nContent-Length: 2\r\nXXab";
      (* duplicate header instead of the separator *)
      "DVM/1.0 200\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nab";
      (* unknown header in place of Content-Length *)
      "DVM/1.0 200\r\nX-Frame: 1\r\n\r\n";
      (* LF-only separator *)
      "DVM/1.0 200\r\nContent-Length: 2\r\n\nab";
    ]

let test_http_truncation_boundaries () =
  let full =
    Proxy.Httpwire.encode_response ~status:Proxy.Httpwire.Ok_200 ~body:"body"
  in
  (match Proxy.Httpwire.decode_response full with
  | Proxy.Httpwire.Ok_200, "body" -> ()
  | _ -> fail "full response must parse");
  (* every proper prefix — cut in the status line, the header, the
     separator or the body — must be rejected, never misparsed *)
  for len = 0 to String.length full - 1 do
    match Proxy.Httpwire.decode_response (String.sub full 0 len) with
    | _ -> fail (Printf.sprintf "accepted truncation at byte %d" len)
    | exception Proxy.Httpwire.Bad_message _ -> ()
  done

let test_http_request_framing_enforced () =
  (* Regression: the request decoder used to take everything up to the
     first "\r" as the request line and ignore the rest, accepting
     truncated framing and trailing garbage that the response decoder
     rejects. Both directions must demand the full "\r\n\r\n". *)
  List.iter
    (fun bad ->
      match Proxy.Httpwire.decode_request bad with
      | _ -> fail ("accepted bad request framing: " ^ String.escaped bad)
      | exception Proxy.Httpwire.Bad_message _ -> ())
    [
      (* truncated after the request line CRLF *)
      "GET /A DVM/1.0\r\n";
      (* a lone CR where the separator belongs *)
      "GET /A DVM/1.0\rxx\n";
      (* LF-only separator *)
      "GET /A DVM/1.0\n\n";
      (* trailing garbage after a well-formed request *)
      "GET /A DVM/1.0\r\n\r\nGET /B DVM/1.0\r\n\r\n";
      "GET /A DVM/1.0\r\n\r\nx";
    ]

(* --- Wire protocol: property tests. --- *)

(* Class names as they appear on the wire: resource-path characters,
   no whitespace or CR/LF (those are framing, not payload). *)
let arbitrary_cls =
  let open QCheck.Gen in
  let cls_char =
    oneof
      [
        char_range 'a' 'z';
        char_range 'A' 'Z';
        char_range '0' '9';
        oneofl [ '/'; '$'; '_'; '-'; '.' ];
      ]
  in
  QCheck.make
    ~print:(fun s -> s)
    (string_size ~gen:cls_char (int_range 1 40))

(* Bodies are arbitrary bytes — rewritten class files are binary. *)
let arbitrary_body =
  QCheck.make
    ~print:String.escaped
    QCheck.Gen.(string_size ~gen:char (int_range 0 80))

let arbitrary_status =
  QCheck.make
    (QCheck.Gen.oneofl
       [ Proxy.Httpwire.Ok_200; Proxy.Httpwire.Not_found_404;
         Proxy.Httpwire.Bad_request_400; Proxy.Httpwire.Overloaded_503 ])

let request_rejected data =
  match Proxy.Httpwire.decode_request data with
  | _ -> false
  | exception Proxy.Httpwire.Bad_message _ -> true

let response_rejected data =
  match Proxy.Httpwire.decode_response data with
  | _ -> false
  | exception Proxy.Httpwire.Bad_message _ -> true

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request roundtrip" ~count:300 arbitrary_cls
    (fun cls ->
      String.equal cls
        (Proxy.Httpwire.decode_request (Proxy.Httpwire.encode_request ~cls ())))

let prop_request_truncation =
  QCheck.Test.make ~name:"request rejects every truncation" ~count:100
    arbitrary_cls (fun cls ->
      let full = Proxy.Httpwire.encode_request ~cls () in
      let ok = ref true in
      for len = 0 to String.length full - 1 do
        if not (request_rejected (String.sub full 0 len)) then ok := false
      done;
      !ok)

let prop_request_trailing_garbage =
  QCheck.Test.make ~name:"request rejects trailing garbage" ~count:100
    QCheck.(pair arbitrary_cls (string_gen_of_size Gen.(int_range 1 20) Gen.char))
    (fun (cls, junk) ->
      request_rejected (Proxy.Httpwire.encode_request ~cls () ^ junk))

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response roundtrip" ~count:300
    QCheck.(pair arbitrary_status arbitrary_body)
    (fun (status, body) ->
      let status', body' =
        Proxy.Httpwire.decode_response
          (Proxy.Httpwire.encode_response ~status ~body)
      in
      status = status' && String.equal body body')

let prop_response_truncation =
  QCheck.Test.make ~name:"response rejects every truncation" ~count:100
    QCheck.(pair arbitrary_status arbitrary_body)
    (fun (status, body) ->
      let full = Proxy.Httpwire.encode_response ~status ~body in
      let ok = ref true in
      for len = 0 to String.length full - 1 do
        if not (response_rejected (String.sub full 0 len)) then ok := false
      done;
      !ok)

let prop_response_trailing_garbage =
  QCheck.Test.make ~name:"response rejects trailing garbage" ~count:100
    QCheck.(
      triple arbitrary_status arbitrary_body
        (string_gen_of_size Gen.(int_range 1 20) Gen.char))
    (fun (status, body, junk) ->
      response_rejected (Proxy.Httpwire.encode_response ~status ~body ^ junk))

(* --- Wire protocol: deadline propagation. --- *)

let test_http_deadline_roundtrip () =
  let raw = Proxy.Httpwire.encode_request ~deadline_us:1_234_567L ~cls:"A/b" () in
  let cls, deadline = Proxy.Httpwire.decode_request_deadline raw in
  check Alcotest.string "class name survives" "A/b" cls;
  check (Alcotest.option Alcotest.int64) "deadline survives" (Some 1_234_567L)
    deadline;
  (* plain decode still accepts the header and ignores it *)
  check Alcotest.string "plain decode ignores the header" "A/b"
    (Proxy.Httpwire.decode_request raw);
  (* no header -> no deadline *)
  let cls, deadline =
    Proxy.Httpwire.decode_request_deadline
      (Proxy.Httpwire.encode_request ~cls:"A/b" ())
  in
  check Alcotest.string "bare request decodes" "A/b" cls;
  check (Alcotest.option Alcotest.int64) "bare request has no deadline" None
    deadline

let test_http_deadline_malformed () =
  List.iter
    (fun data ->
      match Proxy.Httpwire.decode_request_deadline data with
      | _ -> fail ("accepted: " ^ String.escaped data)
      | exception Proxy.Httpwire.Bad_message _ -> ())
    [
      (* unknown header *)
      "GET /A DVM/1.0\r\nX-Custom: 1\r\n\r\n";
      (* duplicate deadline *)
      "GET /A DVM/1.0\r\nDeadline-Us: 1\r\nDeadline-Us: 2\r\n\r\n";
      (* non-numeric / negative *)
      "GET /A DVM/1.0\r\nDeadline-Us: soon\r\n\r\n";
      "GET /A DVM/1.0\r\nDeadline-Us: -5\r\n\r\n";
      (* missing blank line *)
      "GET /A DVM/1.0\r\nDeadline-Us: 1\r\n";
    ]

let test_http_strict_decimal_headers () =
  (* Regression: numeric headers were parsed with [of_string_opt],
     which accepts OCaml integer literal syntax — radix prefixes and
     underscore separators. "Deadline-Us: 0x10" parsed as 16, so two
     spellings of one request hashed and cached differently, and a
     client could smuggle a surprising deadline past a log reviewer.
     Wire numerics must be plain decimal digits, nothing else. *)
  List.iter
    (fun data ->
      match Proxy.Httpwire.decode_request_full data with
      | _ -> fail ("accepted: " ^ String.escaped data)
      | exception Proxy.Httpwire.Bad_message _ -> ())
    [
      "GET /A DVM/1.0\r\nDeadline-Us: 0x10\r\n\r\n";
      "GET /A DVM/1.0\r\nDeadline-Us: 1_000\r\n\r\n";
      "GET /A DVM/1.0\r\nDeadline-Us: 0b101\r\n\r\n";
      "GET /A DVM/1.0\r\nDeadline-Us: 0o17\r\n\r\n";
      "GET /A DVM/1.0\r\nDeadline-Us: +5\r\n\r\n";
      "GET /A DVM/1.0\r\nTrace-Id: 00000000000000ab\r\nParent-Span-Id: 0x7\r\n\r\n";
      "GET /A DVM/1.0\r\nTrace-Id: 00000000000000ab\r\nParent-Span-Id: 1_0\r\n\r\n";
      "GET /A DVM/1.0\r\nTrace-Id: 00000000000000ab\r\nParent-Span-Id: 0b101\r\n\r\n";
    ];
  List.iter
    (fun data ->
      match Proxy.Httpwire.decode_response data with
      | _ -> fail ("accepted: " ^ String.escaped data)
      | exception Proxy.Httpwire.Bad_message _ -> ())
    [
      "DVM/1.0 200\r\nContent-Length: 0x2\r\n\r\nab";
      "DVM/1.0 200\r\nContent-Length: 1_000\r\n\r\n" ^ String.make 1000 'x';
      "DVM/1.0 200\r\nContent-Length: 0b10\r\n\r\nab";
    ];
  (* plain decimals still parse on both sides *)
  let req = "GET /A DVM/1.0\r\nDeadline-Us: 16\r\n\r\n" in
  check (Alcotest.option Alcotest.int64) "plain decimal deadline" (Some 16L)
    (snd (Proxy.Httpwire.decode_request_deadline req));
  match Proxy.Httpwire.decode_response "DVM/1.0 200\r\nContent-Length: 2\r\n\r\nab" with
  | Proxy.Httpwire.Ok_200, "ab" -> ()
  | _ -> fail "plain decimal content-length must parse"

(* Non-decimal renderings of a number that [Int64.of_string] would
   happily accept: every one must bounce off the wire parsers. *)
let arbitrary_nondecimal =
  QCheck.make
    ~print:(fun (s, _) -> s)
    QCheck.Gen.(
      let* n = int_range 0 0xFFFF in
      let* render =
        oneofl
          [
            (fun n -> Printf.sprintf "0x%x" n);
            (fun n -> Printf.sprintf "0X%X" n);
            (fun n -> Printf.sprintf "0o%o" n);
            (fun n -> Printf.sprintf "0u%u" n);
            (fun n ->
              (* decimal with an underscore separator *)
              let s = string_of_int n in
              if String.length s < 2 then "0_" ^ s
              else String.sub s 0 1 ^ "_" ^ String.sub s 1 (String.length s - 1));
          ]
      in
      return (render n, n))

let prop_numeric_headers_reject_nondecimal =
  QCheck.Test.make ~name:"numeric headers reject non-decimal spellings"
    ~count:200 arbitrary_nondecimal (fun (spelling, n) ->
      (* sanity: the spelling really is the OCaml-literal form of n,
         i.e. the old lenient parser would have accepted it *)
      Int64.of_string_opt spelling = Some (Int64.of_int n)
      && request_rejected
           (Printf.sprintf "GET /A DVM/1.0\r\nDeadline-Us: %s\r\n\r\n" spelling)
      && request_rejected
           (Printf.sprintf
              "GET /A DVM/1.0\r\nTrace-Id: 00000000000000ab\r\nParent-Span-Id: %s\r\n\r\n"
              spelling)
      && response_rejected
           (Printf.sprintf "DVM/1.0 200\r\nContent-Length: %s\r\n\r\n%s" spelling
              (String.make (min n 80) 'x')))

let prop_request_deadline_roundtrip =
  QCheck.Test.make ~name:"request+deadline roundtrip" ~count:300
    QCheck.(pair arbitrary_cls (option (int_bound 1_000_000_000)))
    (fun (cls, deadline) ->
      let deadline_us = Option.map Int64.of_int deadline in
      let cls', deadline' =
        Proxy.Httpwire.decode_request_deadline
          (Proxy.Httpwire.encode_request ?deadline_us ~cls ())
      in
      String.equal cls cls' && deadline_us = deadline')

(* --- Wire protocol: distributed-trace headers. --- *)

let test_http_trace_absent () =
  (* Requests from peers that predate tracing carry no headers and
     must keep decoding — with a null context, not an error. *)
  let req =
    Proxy.Httpwire.decode_request_full (Proxy.Httpwire.encode_request ~cls:"A/b" ())
  in
  check Alcotest.string "class survives" "A/b" req.Proxy.Httpwire.rq_cls;
  check Alcotest.bool "no trace id" true (req.Proxy.Httpwire.rq_trace_id = None);
  check
    (Alcotest.option Alcotest.int)
    "no parent span" None req.Proxy.Httpwire.rq_parent_span;
  (* deadline-only requests keep working too *)
  let req =
    Proxy.Httpwire.decode_request_full
      (Proxy.Httpwire.encode_request ~deadline_us:9L ~cls:"A/b" ())
  in
  check
    (Alcotest.option Alcotest.int64)
    "deadline still decodes" (Some 9L) req.Proxy.Httpwire.rq_deadline_us;
  check Alcotest.bool "still no trace" true
    (req.Proxy.Httpwire.rq_trace_id = None)

let test_http_trace_malformed () =
  List.iter
    (fun data ->
      match Proxy.Httpwire.decode_request_full data with
      | _ -> fail ("accepted: " ^ String.escaped data)
      | exception Proxy.Httpwire.Bad_message _ -> ())
    [
      (* wrong width (15 and 17 hex digits) *)
      "GET /A DVM/1.0\r\nTrace-Id: 00000000000000f\r\n\r\n";
      "GET /A DVM/1.0\r\nTrace-Id: 00000000000000f00\r\n\r\n";
      (* non-hex, uppercase, and the reserved all-zero id *)
      "GET /A DVM/1.0\r\nTrace-Id: 000000000000zzzz\r\n\r\n";
      "GET /A DVM/1.0\r\nTrace-Id: 00000000000000FF\r\n\r\n";
      "GET /A DVM/1.0\r\nTrace-Id: 0000000000000000\r\n\r\n";
      (* duplicate header *)
      "GET /A DVM/1.0\r\n\
       Trace-Id: 00000000000000ff\r\n\
       Trace-Id: 00000000000000ff\r\n\r\n";
      (* parent span: non-numeric, negative, duplicate *)
      "GET /A DVM/1.0\r\n\
       Trace-Id: 00000000000000ff\r\nParent-Span-Id: x\r\n\r\n";
      "GET /A DVM/1.0\r\n\
       Trace-Id: 00000000000000ff\r\nParent-Span-Id: -1\r\n\r\n";
      "GET /A DVM/1.0\r\n\
       Trace-Id: 00000000000000ff\r\n\
       Parent-Span-Id: 1\r\nParent-Span-Id: 2\r\n\r\n";
      (* a parent span with no trace to hang it on *)
      "GET /A DVM/1.0\r\nParent-Span-Id: 3\r\n\r\n";
    ]

let prop_request_trace_roundtrip =
  QCheck.Test.make ~name:"request+trace roundtrip" ~count:300
    QCheck.(
      triple arbitrary_cls
        (option (int_bound 1_000_000_000))
        (option (pair (int_bound 1_000_000) (int_bound 100_000))))
    (fun (cls, deadline, trace) ->
      let deadline_us = Option.map Int64.of_int deadline in
      (* ids as the client would mint them: nonzero trace, nonneg span *)
      let trace =
        Option.map (fun (tr, sp) -> (Int64.of_int (tr + 1), sp)) trace
      in
      let req =
        Proxy.Httpwire.decode_request_full
          (Proxy.Httpwire.encode_request ?deadline_us ?trace ~cls ())
      in
      String.equal cls req.Proxy.Httpwire.rq_cls
      && deadline_us = req.Proxy.Httpwire.rq_deadline_us
      && Option.map fst trace = req.Proxy.Httpwire.rq_trace_id
      && Option.map snd trace = req.Proxy.Httpwire.rq_parent_span
      (* the legacy decoder ignores the new headers *)
      && String.equal cls
           (Proxy.Httpwire.decode_request
              (Proxy.Httpwire.encode_request ?deadline_us ?trace ~cls ())))

let prop_request_trace_garbage =
  (* Arbitrary bytes in header position never crash the decoder: it
     either returns a request or raises Bad_message, nothing else. *)
  QCheck.Test.make ~name:"trace headers reject garbage without crashing"
    ~count:300
    QCheck.(
      pair arbitrary_cls (string_gen_of_size Gen.(int_range 0 30) Gen.char))
    (fun (cls, junk) ->
      let data =
        Printf.sprintf "GET /%s DVM/1.0\r\nTrace-Id: %s\r\n\r\n" cls junk
      in
      match Proxy.Httpwire.decode_request_full data with
      | req -> req.Proxy.Httpwire.rq_trace_id <> Some 0L
      | exception Proxy.Httpwire.Bad_message _ -> true)

(* --- Circuit breaker. --- *)

let test_breaker_consecutive_trip () =
  let b = Proxy.Breaker.create () in
  check Alcotest.bool "starts closed" true (Proxy.Breaker.allow b ~now:0L);
  Proxy.Breaker.record_failure b ~now:0L;
  Proxy.Breaker.record_failure b ~now:1L;
  check Alcotest.bool "two failures stay closed" true
    (Proxy.Breaker.allow b ~now:2L);
  Proxy.Breaker.record_failure b ~now:2L;
  check Alcotest.bool "third consecutive failure opens" false
    (Proxy.Breaker.allow b ~now:3L);
  check Alcotest.int "trip counted" 1 (Proxy.Breaker.trips b)

let test_breaker_half_open_cycle () =
  let b = Proxy.Breaker.create ~cooldown_us:1000L () in
  for i = 0 to 2 do
    Proxy.Breaker.record_failure b ~now:(Int64.of_int i)
  done;
  check Alcotest.bool "open rejects" false (Proxy.Breaker.allow b ~now:500L);
  (* cooldown expires -> half-open admits probes *)
  check Alcotest.bool "half-open admits a probe" true
    (Proxy.Breaker.allow b ~now:1500L);
  Proxy.Breaker.record_success b ~now:1500L;
  Proxy.Breaker.record_success b ~now:1501L;
  check Alcotest.bool "two probe successes close" true
    (Proxy.Breaker.state b ~now:1502L = Proxy.Breaker.Closed);
  (* a probe failure instead re-opens with a doubled cooldown *)
  let b = Proxy.Breaker.create ~cooldown_us:1000L () in
  for i = 0 to 2 do
    Proxy.Breaker.record_failure b ~now:(Int64.of_int i)
  done;
  ignore (Proxy.Breaker.allow b ~now:1500L);
  Proxy.Breaker.record_failure b ~now:1500L;
  check Alcotest.bool "probe failure re-opens" false
    (Proxy.Breaker.allow b ~now:1600L);
  check Alcotest.bool "cooldown doubled: still open after base interval" false
    (Proxy.Breaker.allow b ~now:(Int64.add 1500L 1500L));
  check Alcotest.bool "reopens after the doubled interval" true
    (Proxy.Breaker.allow b ~now:(Int64.add 1500L 2500L))

let test_breaker_flapping_window () =
  (* A flapper: every failure is followed by a success, so the
     consecutive counter never reaches 3 — but the windowed count
     does, and the breaker opens anyway. *)
  let b = Proxy.Breaker.create () in
  let t = ref 0L in
  for _ = 1 to 3 do
    Proxy.Breaker.record_failure b ~now:!t;
    t := Int64.add !t 100_000L;
    Proxy.Breaker.record_success b ~now:!t;
    t := Int64.add !t 100_000L;
    check Alcotest.bool "still closed while under the window threshold" true
      (Proxy.Breaker.allow b ~now:!t)
  done;
  Proxy.Breaker.record_failure b ~now:!t;
  check Alcotest.bool "fourth windowed failure opens" false
    (Proxy.Breaker.allow b ~now:!t);
  (* the same four failures spread over more than the window stay closed *)
  let b = Proxy.Breaker.create ~window_us:1_000_000L () in
  let t = ref 0L in
  for _ = 1 to 4 do
    Proxy.Breaker.record_failure b ~now:!t;
    Proxy.Breaker.record_success b ~now:!t;
    t := Int64.add !t 2_000_000L
  done;
  check Alcotest.bool "slow failures age out of the window" true
    (Proxy.Breaker.allow b ~now:!t)

let test_breaker_half_open_probe_cap () =
  (* Regression: Half_open used to answer [true] to every caller, so
     the whole backlog stampeded the recovering shard at once. The cap
     is [success_threshold] outstanding probes; further callers are
     refused until a probe resolves. *)
  let b = Proxy.Breaker.create ~cooldown_us:1000L ~success_threshold:2 () in
  for i = 0 to 2 do
    Proxy.Breaker.record_failure b ~now:(Int64.of_int i)
  done;
  check Alcotest.bool "first probe admitted" true
    (Proxy.Breaker.allow b ~now:1500L);
  check Alcotest.bool "second probe admitted" true
    (Proxy.Breaker.allow b ~now:1501L);
  check Alcotest.bool "third caller refused: cap reached" false
    (Proxy.Breaker.allow b ~now:1502L);
  check Alcotest.bool "still refused while probes unresolved" false
    (Proxy.Breaker.allow b ~now:1600L);
  (* one probe resolves: exactly one slot frees *)
  Proxy.Breaker.record_success b ~now:1700L;
  check Alcotest.bool "resolved probe frees one slot" true
    (Proxy.Breaker.allow b ~now:1701L);
  check Alcotest.bool "cap holds again" false
    (Proxy.Breaker.allow b ~now:1702L);
  (* the second success closes; traffic flows freely again *)
  Proxy.Breaker.record_success b ~now:1800L;
  check Alcotest.bool "closed after threshold successes" true
    (Proxy.Breaker.state b ~now:1801L = Proxy.Breaker.Closed);
  check Alcotest.bool "closed admits everyone" true
    (Proxy.Breaker.allow b ~now:1802L && Proxy.Breaker.allow b ~now:1803L
    && Proxy.Breaker.allow b ~now:1804L)

(* State-machine property for the breaker: drive the real
   implementation and an independently written reference model with
   the same random op sequence and require identical observable
   behaviour — every [allow] verdict, the state, and the trip count.
   The model encodes the spec directly: trips open for the current
   cooldown, each trip doubles the cooldown up to the cap, closing
   resets it, Open always refuses, Half_open admits at most
   [success_threshold] unresolved probes. *)
type breaker_op = B_allow | B_success | B_failure | B_advance of int

let prop_breaker_matches_model =
  let fail_threshold = 3 and window_threshold = 4 and success_threshold = 2 in
  let window_us = 10_000L and base_cooldown = 1_000L and max_cooldown = 4_000L in
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 80)
        (frequency
           [
             (3, return B_allow);
             (2, return B_success);
             (3, return B_failure);
             (2, map (fun d -> B_advance d) (int_range 1 3_000));
           ]))
  in
  let print_ops ops =
    String.concat ";"
      (List.map
         (function
           | B_allow -> "allow"
           | B_success -> "success"
           | B_failure -> "failure"
           | B_advance d -> Printf.sprintf "+%dus" d)
         ops)
  in
  QCheck.Test.make ~count:500
    ~name:"breaker matches its reference model (open refuses, cooldown \
           doubles and caps, close resets, probe cap)"
    (QCheck.make gen ~print:print_ops)
    (fun ops ->
      let b = Proxy.Breaker.create ~fail_threshold ~window_threshold ~window_us
          ~cooldown_us:base_cooldown ~max_cooldown_us:max_cooldown
          ~success_threshold ()
      in
      (* the reference model *)
      let m_st = ref `Closed and m_consec = ref 0 and m_window = ref [] in
      let m_cooldown = ref base_cooldown and m_open_until = ref 0L in
      let m_succ = ref 0 and m_inflight = ref 0 and m_trips = ref 0 in
      let now = ref 0L in
      let m_refresh () =
        if !m_st = `Open && Int64.compare !now !m_open_until >= 0 then begin
          m_st := `Half_open;
          m_succ := 0;
          m_inflight := 0
        end
      in
      let m_trip () =
        m_st := `Open;
        m_open_until := Int64.add !now !m_cooldown;
        m_cooldown :=
          (let d = Int64.mul !m_cooldown 2L in
           if Int64.compare d max_cooldown > 0 then max_cooldown else d);
        m_succ := 0;
        m_inflight := 0;
        incr m_trips
      in
      List.for_all
        (fun op ->
          match op with
          | B_advance d ->
            now := Int64.add !now (Int64.of_int d);
            true
          | B_allow ->
            m_refresh ();
            let model_verdict =
              match !m_st with
              | `Closed -> true
              | `Open -> false
              | `Half_open ->
                if !m_inflight >= success_threshold then false
                else begin
                  incr m_inflight;
                  true
                end
            in
            let real = Proxy.Breaker.allow b ~now:!now in
            real = model_verdict
            && not (real && Proxy.Breaker.state b ~now:!now = Proxy.Breaker.Open)
          | B_failure ->
            m_refresh ();
            incr m_consec;
            let horizon = Int64.sub !now window_us in
            m_window :=
              !now
              :: List.filter
                   (fun at -> Int64.compare at horizon >= 0)
                   !m_window;
            (match !m_st with
            | `Open -> ()
            | `Half_open -> m_trip ()
            | `Closed ->
              if
                !m_consec >= fail_threshold
                || List.length !m_window >= window_threshold
              then m_trip ());
            Proxy.Breaker.record_failure b ~now:!now;
            Proxy.Breaker.trips b = !m_trips
          | B_success ->
            m_refresh ();
            m_consec := 0;
            (match !m_st with
            | `Open | `Closed -> ()
            | `Half_open ->
              if !m_inflight > 0 then decr m_inflight;
              incr m_succ;
              if !m_succ >= success_threshold then begin
                m_st := `Closed;
                m_window := [];
                m_cooldown := base_cooldown;
                m_inflight := 0
              end);
            Proxy.Breaker.record_success b ~now:!now;
            (match (Proxy.Breaker.state b ~now:!now, !m_st) with
            | Proxy.Breaker.Closed, `Closed
            | Proxy.Breaker.Open, `Open
            | Proxy.Breaker.Half_open, `Half_open ->
              true
            | _ -> false))
        ops)

(* --- Admission control. --- *)

let test_admission_deadline_shed () =
  let a = Proxy.Admission.create () in
  (* plenty of budget: admitted *)
  (match
     Proxy.Admission.admit a ~now:0L ~deadline:(Some 100_000L) ~est_us:50_000L
   with
  | Proxy.Admission.Admit -> ()
  | _ -> fail "affordable request was shed");
  check Alcotest.int "inflight tracks admission" 1 (Proxy.Admission.inflight a);
  (* deadline closer than the estimate: shed *)
  (match
     Proxy.Admission.admit a ~now:0L ~deadline:(Some 40_000L) ~est_us:50_000L
   with
  | Proxy.Admission.Shed_deadline -> ()
  | _ -> fail "doomed request was admitted");
  (* no deadline carried: always admitted *)
  (match Proxy.Admission.admit a ~now:0L ~deadline:None ~est_us:1_000_000L with
  | Proxy.Admission.Admit -> ()
  | _ -> fail "deadline-free request was shed");
  Proxy.Admission.complete a;
  Proxy.Admission.complete a;
  check Alcotest.int "completions drain inflight" 0
    (Proxy.Admission.inflight a);
  check Alcotest.int "sheds counted" 1 (Proxy.Admission.shed_deadline a)

let test_admission_queue_shed () =
  let a = Proxy.Admission.create ~queue_limit:2 () in
  let admit () =
    Proxy.Admission.admit a ~now:0L ~deadline:None ~est_us:0L
  in
  (match (admit (), admit ()) with
  | Proxy.Admission.Admit, Proxy.Admission.Admit -> ()
  | _ -> fail "under-limit requests were shed");
  (match admit () with
  | Proxy.Admission.Shed_queue -> ()
  | _ -> fail "over-limit request was admitted");
  Proxy.Admission.complete a;
  match admit () with
  | Proxy.Admission.Admit -> ()
  | _ -> fail "freed slot was not reusable"

let test_admission_ewma_tracks_cost () =
  let a = Proxy.Admission.create ~initial_cost_us:50_000 () in
  check Alcotest.int64 "initial estimate" 50_000L
    (Proxy.Admission.estimate_us a);
  (* a run of slow misses pulls the estimate up *)
  for _ = 1 to 30 do
    (match Proxy.Admission.admit a ~now:0L ~deadline:None ~est_us:0L with
    | Proxy.Admission.Admit -> ()
    | _ -> fail "shed");
    Proxy.Admission.complete ~sample:200_000L a
  done;
  check Alcotest.bool "estimate converged toward the samples" true
    (Proxy.Admission.estimate_us a > 150_000L);
  (* completions without a sample (hits, joins) leave it alone *)
  let before = Proxy.Admission.estimate_us a in
  (match Proxy.Admission.admit a ~now:0L ~deadline:None ~est_us:0L with
  | Proxy.Admission.Admit -> ()
  | _ -> fail "shed");
  Proxy.Admission.complete a;
  check Alcotest.int64 "sample-free completion leaves the estimate" before
    (Proxy.Admission.estimate_us a)

(* --- Proxy request paths. --- *)

let origin_for classes =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun cf -> Hashtbl.replace tbl cf.CF.name (Bytecode.Encode.class_to_bytes cf))
    classes;
  fun name -> Hashtbl.find_opt tbl name

(* The proxy sheds a deadline it cannot make, and replies Overloaded
   rather than queueing: the distinct reply is what stops the client
   from counting it as a failure against the breaker. *)
let test_proxy_sheds_hopeless_deadline () =
  let engine = Simnet.Engine.create () in
  let proxy =
    Proxy.create engine ~origin:(origin_for [ hello ])
      ~origin_latency:(fun _ -> 0L)
      ~filters:(filters ()) ()
  in
  (* a deadline in the past can never be met *)
  let got = ref None in
  Proxy.request proxy ~deadline:0L ~cls:"Hello" (fun r -> got := Some r);
  Simnet.Engine.run engine;
  (match !got with
  | Some Proxy.Overloaded -> ()
  | _ -> fail "hopeless deadline was not shed");
  check Alcotest.int "shed counted" 1
    (Proxy.Admission.shed_deadline proxy.Proxy.admission);
  check Alcotest.int "no origin fetch for a shed request" 0
    proxy.Proxy.origin_fetches;
  (* an achievable deadline is served as usual *)
  let got = ref None in
  Proxy.request proxy ~deadline:10_000_000L ~cls:"Hello" (fun r ->
      got := Some r);
  Simnet.Engine.run engine;
  (match !got with
  | Some (Proxy.Bytes _) -> ()
  | _ -> fail "achievable deadline was not served");
  check Alcotest.int "no further shed" 1
    (Proxy.Admission.shed_deadline proxy.Proxy.admission)

let test_request_sync_and_cache () =
  let engine = Simnet.Engine.create () in
  let proxy =
    Proxy.create engine ~origin:(origin_for [ hello ])
      ~origin_latency:(fun _ -> 0L)
      ~filters:(filters ()) ()
  in
  (match Proxy.request_sync proxy ~cls:"Hello" with
  | Proxy.Bytes _ -> ()
  | Proxy.Not_found | Proxy.Unavailable | Proxy.Overloaded -> fail "not served");
  check Alcotest.int "one origin fetch" 1 proxy.Proxy.origin_fetches;
  (match Proxy.request_sync proxy ~cls:"Hello" with
  | Proxy.Bytes _ -> ()
  | Proxy.Not_found | Proxy.Unavailable | Proxy.Overloaded -> fail "not served from cache");
  check Alcotest.int "cache hit, no refetch" 1 proxy.Proxy.origin_fetches;
  match Proxy.request_sync proxy ~cls:"Nowhere" with
  | Proxy.Not_found -> ()
  | Proxy.Bytes _ | Proxy.Unavailable | Proxy.Overloaded -> fail "phantom class"

let test_request_async_timing () =
  let engine = Simnet.Engine.create () in
  let proxy =
    Proxy.create engine
      ~origin:(origin_for [ hello ])
      ~origin_latency:(fun _ -> Simnet.Engine.ms 100)
      ~filters:(filters ()) ()
  in
  let served_at = ref (-1L) in
  Proxy.request proxy ~cls:"Hello" (fun reply ->
      match reply with
      | Proxy.Bytes _ -> served_at := Simnet.Engine.now engine
      | Proxy.Not_found | Proxy.Unavailable | Proxy.Overloaded -> fail "not served");
  Simnet.Engine.run engine;
  (* must include WAN latency plus pipeline compute *)
  check Alcotest.bool "after WAN latency" true (!served_at >= 100_000L);
  check Alcotest.bool "pipeline time accounted" true
    (Int64.to_int !served_at > 100_000)

let test_provider_feeds_client () =
  let engine = Simnet.Engine.create () in
  let proxy =
    Proxy.create engine ~origin:(origin_for [ hello ])
      ~origin_latency:(fun _ -> 0L)
      ~filters:(filters ()) ()
  in
  let vm = Jvm.Bootlib.fresh_vm ~provider:(Proxy.provider proxy) () in
  ignore (Verifier.Rt_verifier.install vm);
  ignore (Monitor.Profiler.install vm ());
  (match Jvm.Interp.run_main vm "Hello" with
  | Ok () -> ()
  | Error e -> fail (Jvm.Interp.describe_throwable e));
  check Alcotest.string "output through full path" "hi\n" (Jvm.Vmstate.output vm)

let test_cache_hit_audit_timing () =
  (* Regression: the cache-hit path used to count bytes_served and
     write the audit record at dispatch time, before the cache-service
     CPU work ran — so audit timestamps led the virtual clock. *)
  let engine = Simnet.Engine.create () in
  let audit = Monitor.Audit.create () in
  let proxy =
    Proxy.create engine ~audit ~origin:(origin_for [ hello ])
      ~origin_latency:(fun _ -> 0L)
      ~filters:(filters ()) ()
  in
  Proxy.request proxy ~cls:"Hello" (fun _ -> ());
  Simnet.Engine.run engine;
  let dispatched_at = Simnet.Engine.now engine in
  let served_before = proxy.Proxy.bytes_served in
  let replied_at = ref (-1L) in
  Proxy.request proxy ~cls:"Hello" (fun reply ->
      (match reply with
      | Proxy.Bytes _ -> ()
      | Proxy.Not_found | Proxy.Unavailable | Proxy.Overloaded -> fail "cache hit not served");
      replied_at := Simnet.Engine.now engine;
      check Alcotest.bool "bytes_served counted by completion" true
        (proxy.Proxy.bytes_served > served_before));
  check Alcotest.int "bytes_served not counted at dispatch" served_before
    proxy.Proxy.bytes_served;
  Simnet.Engine.run engine;
  check Alcotest.bool "cache service occupies the CPU" true
    (!replied_at > dispatched_at);
  match Monitor.Audit.filter_kind audit "proxy.cache_hit" with
  | [ ev ] ->
    check Alcotest.int64 "audit record stamped at completion" !replied_at
      ev.Monitor.Audit.ev_time
  | evs ->
    fail
      (Printf.sprintf "expected one cache-hit audit record, got %d"
         (List.length evs))

let test_cache_gauges_refresh_on_evict () =
  let reg = Telemetry.default in
  Telemetry.reset reg;
  Telemetry.enable reg;
  Fun.protect
    ~finally:(fun () -> Telemetry.disable reg)
    (fun () ->
      let c = Proxy.Cache.create ~capacity:100 in
      Proxy.Cache.store c "a" (String.make 40 'a');
      Proxy.Cache.store c "b" (String.make 40 'b');
      (* storing c evicts the LRU entry; the occupancy gauges must
         reflect the post-eviction state, not the last store *)
      Proxy.Cache.store c "c" (String.make 40 'c');
      check Alcotest.int "two entries" 2 (Proxy.Cache.size c);
      check Alcotest.int64 "bytes gauge tracks eviction" 80L
        (Telemetry.gauge_value reg "cache.bytes_used");
      check Alcotest.int64 "entries gauge tracks eviction" 2L
        (Telemetry.gauge_value reg "cache.entries"))

let test_single_flight_coalesces () =
  let engine = Simnet.Engine.create () in
  let proxy =
    Proxy.create engine
      ~origin:(origin_for [ hello ])
      ~origin_latency:(fun _ -> Simnet.Engine.ms 100)
      ~filters:(filters ()) ()
  in
  let replies = ref [] in
  for _ = 1 to 3 do
    Proxy.request proxy ~cls:"Hello" (fun r -> replies := r :: !replies)
  done;
  Simnet.Engine.run engine;
  (match !replies with
  | [ Proxy.Bytes a; Proxy.Bytes b; Proxy.Bytes c ] ->
    check Alcotest.string "identical bytes (1=2)" a b;
    check Alcotest.string "identical bytes (2=3)" b c
  | rs -> fail (Printf.sprintf "expected 3 served replies, got %d" (List.length rs)));
  check Alcotest.int "one pipeline run" 1 proxy.Proxy.pipeline_runs;
  check Alcotest.int "one origin fetch" 1 proxy.Proxy.origin_fetches;
  check Alcotest.int "two joined the leader" 2 proxy.Proxy.coalesced;
  check Alcotest.int "inflight table drained" 0
    (Hashtbl.length proxy.Proxy.inflight);
  (* a later request is an ordinary cache hit, not a new flight *)
  Proxy.request proxy ~cls:"Hello" (fun _ -> ());
  Simnet.Engine.run engine;
  check Alcotest.int "still one pipeline run" 1 proxy.Proxy.pipeline_runs

let test_single_flight_crash_fails_all_waiters () =
  (* A crash mid-flight settles the whole flight as failed: the leader
     and every joined waiter fail through their own [on_fail], and the
     in-flight entry is dropped so a post-restart retry starts fresh. *)
  let engine = Simnet.Engine.create () in
  let proxy =
    Proxy.create engine
      ~origin:(origin_for [ hello ])
      ~origin_latency:(fun _ -> Simnet.Engine.ms 100)
      ~filters:(filters ()) ()
  in
  let served = ref 0 and failed = ref 0 in
  let issue () =
    Proxy.request proxy ~cls:"Hello"
      ~on_fail:(fun () -> incr failed)
      (fun _ -> incr served)
  in
  issue ();
  issue ();
  (* crash while the leader's pipeline run occupies the CPU: origin
     latency is 100 ms and the pipeline needs >1 ms of compute *)
  Simnet.Engine.schedule engine ~delay:100_500L (fun () ->
      Simnet.Host.crash proxy.Proxy.host);
  Simnet.Engine.run engine;
  check Alcotest.int "nothing served" 0 !served;
  check Alcotest.int "leader and waiter both failed" 2 !failed;
  check Alcotest.int "inflight entry dropped" 0
    (Hashtbl.length proxy.Proxy.inflight);
  (* after restart, a retry is a fresh flight and succeeds *)
  Simnet.Host.restart proxy.Proxy.host;
  let ok = ref false in
  Proxy.request proxy ~cls:"Hello" (fun r ->
      match r with Proxy.Bytes _ -> ok := true | _ -> ());
  Simnet.Engine.run engine;
  check Alcotest.bool "retry after restart served" true !ok

let test_shared_l2_rewarm () =
  (* Two shards share one L2: the second shard serves the class from
     its peer's pipeline output (no pipeline run, no origin fetch),
     and a shard that loses its L1 to a restart rewarms from the L2. *)
  let engine = Simnet.Engine.create () in
  let l2 = Proxy.Cache.create ~capacity:(1024 * 1024) in
  let mk name =
    Proxy.create engine ~host_name:name ~l2
      ~origin:(origin_for [ hello ])
      ~origin_latency:(fun _ -> 0L)
      ~filters:(filters ()) ()
  in
  let a = mk "shard-a" and b = mk "shard-b" in
  let bytes_a =
    match Proxy.request_sync a ~cls:"Hello" with
    | Proxy.Bytes x -> x
    | _ -> fail "shard a did not serve"
  in
  check Alcotest.int "a ran the pipeline" 1 a.Proxy.pipeline_runs;
  (match Proxy.request_sync b ~cls:"Hello" with
  | Proxy.Bytes x -> check Alcotest.string "identical bytes from L2" bytes_a x
  | _ -> fail "shard b did not serve");
  check Alcotest.int "b skipped the pipeline" 0 b.Proxy.pipeline_runs;
  check Alcotest.int "b never touched the origin" 0 b.Proxy.origin_fetches;
  check Alcotest.int "b hit the shared tier" 1 b.Proxy.l2_hits;
  (* cold restart: b's L1 is gone, the shared tier still has the class *)
  Proxy.Cache.drop_fraction b.Proxy.cache ~fraction:1.0;
  (match Proxy.request_sync b ~cls:"Hello" with
  | Proxy.Bytes x -> check Alcotest.string "rewarmed bytes identical" bytes_a x
  | _ -> fail "shard b did not rewarm");
  check Alcotest.int "rewarm came from the L2" 2 b.Proxy.l2_hits;
  check Alcotest.int "still no pipeline run on b" 0 b.Proxy.pipeline_runs

let test_audit_trail () =
  let engine = Simnet.Engine.create () in
  let audit = Monitor.Audit.create () in
  let proxy =
    Proxy.create engine ~audit ~origin:(origin_for [ hello ])
      ~origin_latency:(fun _ -> 0L)
      ~filters:(filters ()) ()
  in
  let done_ = ref false in
  Proxy.request proxy ~cls:"Hello" (fun _ -> done_ := true);
  Simnet.Engine.run engine;
  check Alcotest.bool "served" true !done_;
  check Alcotest.bool "audited" true
    (List.length (Monitor.Audit.filter_kind audit "proxy.serve") = 1);
  check Alcotest.bool "chain ok" true (Monitor.Audit.verify_chain audit)

let () =
  Alcotest.run "proxy"
    [
      ( "cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "disabled" `Quick test_cache_disabled;
          Alcotest.test_case "oversized" `Quick test_cache_oversized_not_stored;
          Alcotest.test_case "gauges refresh on evict" `Quick
            test_cache_gauges_refresh_on_evict;
          Alcotest.test_case "restart drops not evictions" `Quick
            test_cache_restart_drops_not_evictions;
          Alcotest.test_case "disabled cache counts misses" `Quick
            test_cache_disabled_counts_miss;
          Alcotest.test_case "oversize skip counter" `Quick
            test_cache_oversize_skip_counter;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "transforms" `Quick test_pipeline_transforms;
          Alcotest.test_case "rejects to error class" `Quick
            test_pipeline_rejects_into_error_class;
          Alcotest.test_case "malformed input" `Quick
            test_pipeline_malformed_input;
          Alcotest.test_case "parse-per-service ablation" `Quick
            test_parse_per_service_ablation;
          Alcotest.test_case "parse-per-service rejection parity" `Quick
            test_parse_per_service_rejection_parity;
          Alcotest.test_case "signing" `Quick test_pipeline_signs;
          Alcotest.test_case "encode overflow rejects" `Quick
            test_pipeline_encode_overflow_rejects;
          Alcotest.test_case "memo transparent" `Quick
            test_pipeline_memo_transparent;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_http_roundtrip;
          Alcotest.test_case "serve" `Quick test_http_serve;
          Alcotest.test_case "malformed" `Quick test_http_malformed;
          Alcotest.test_case "separator enforced" `Quick
            test_http_separator_enforced;
          Alcotest.test_case "truncation boundaries" `Quick
            test_http_truncation_boundaries;
          Alcotest.test_case "request framing enforced" `Quick
            test_http_request_framing_enforced;
          Alcotest.test_case "deadline roundtrip" `Quick
            test_http_deadline_roundtrip;
          Alcotest.test_case "deadline malformed" `Quick
            test_http_deadline_malformed;
          Alcotest.test_case "strict decimal headers" `Quick
            test_http_strict_decimal_headers;
          Alcotest.test_case "trace headers absent" `Quick
            test_http_trace_absent;
          Alcotest.test_case "trace headers malformed" `Quick
            test_http_trace_malformed;
        ] );
      ( "wire-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_request_roundtrip;
            prop_request_truncation;
            prop_request_trailing_garbage;
            prop_request_deadline_roundtrip;
            prop_request_trace_roundtrip;
            prop_request_trace_garbage;
            prop_response_roundtrip;
            prop_response_truncation;
            prop_response_trailing_garbage;
            prop_numeric_headers_reject_nondecimal;
          ] );
      ( "breaker",
        [
          Alcotest.test_case "consecutive trip" `Quick
            test_breaker_consecutive_trip;
          Alcotest.test_case "half-open cycle" `Quick
            test_breaker_half_open_cycle;
          Alcotest.test_case "flapping window" `Quick
            test_breaker_flapping_window;
          Alcotest.test_case "half-open probe cap" `Quick
            test_breaker_half_open_probe_cap;
          QCheck_alcotest.to_alcotest prop_breaker_matches_model;
        ] );
      ( "admission",
        [
          Alcotest.test_case "deadline shed" `Quick test_admission_deadline_shed;
          Alcotest.test_case "queue shed" `Quick test_admission_queue_shed;
          Alcotest.test_case "ewma cost tracking" `Quick
            test_admission_ewma_tracks_cost;
          Alcotest.test_case "sheds hopeless deadline" `Quick
            test_proxy_sheds_hopeless_deadline;
        ] );
      ( "requests",
        [
          Alcotest.test_case "sync + cache" `Quick test_request_sync_and_cache;
          Alcotest.test_case "async timing" `Quick test_request_async_timing;
          Alcotest.test_case "provider feeds client" `Quick
            test_provider_feeds_client;
          Alcotest.test_case "audit trail" `Quick test_audit_trail;
          Alcotest.test_case "cache-hit audit timing" `Quick
            test_cache_hit_audit_timing;
        ] );
      ( "single-flight",
        [
          Alcotest.test_case "coalesces concurrent misses" `Quick
            test_single_flight_coalesces;
          Alcotest.test_case "crash fails all waiters" `Quick
            test_single_flight_crash_fails_all_waiters;
          Alcotest.test_case "shared L2 rewarm" `Quick test_shared_l2_rewarm;
        ] );
    ]
