(* Tests for the binary-rewriting engine: insertion semantics, target
   remapping, handler adjustment, bound refitting — and the property
   that patching preserves program behaviour. *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile
module I = Bytecode.Instr
module P = Rewrite.Patch

let check = Alcotest.check
let fail = Alcotest.fail
let static = [ CF.Public; CF.Static ]

let code_of cls name desc =
  match CF.find_method cls name desc with
  | Some { CF.m_code = Some c; _ } -> c
  | _ -> fail "method not found"

let run_static classes cls name desc args =
  let vm = Jvm.Bootlib.fresh_vm () in
  List.iter (Jvm.Classreg.register vm.Jvm.Vmstate.reg) classes;
  Jvm.Interp.invoke vm ~cls ~name ~desc args

(* A branchy method: f(n) = if n < 10 then n*2 else n-10, via a loop. *)
let subject =
  B.class_ "Subject"
    [
      B.meth ~flags:static "f" "(I)I"
        [
          B.Iload 0;
          B.Const 10;
          B.If_icmp (I.Lt, "small");
          B.Iload 0;
          B.Const 10;
          B.Sub;
          B.Ireturn;
          B.Label "small";
          B.Iload 0;
          B.Const 2;
          B.Mul;
          B.Ireturn;
        ];
    ]

let expect_f classes n =
  match
    run_static classes "Subject" "f" "(I)I" [ Jvm.Value.Int (Int32.of_int n) ]
  with
  | Some (Jvm.Value.Int r) -> Int32.to_int r
  | _ -> fail "no result"

let test_insert_preserves_semantics () =
  let code = code_of subject "f" "(I)I" in
  (* Insert stack-neutral no-ops before every instruction. *)
  let insertions =
    List.init (Array.length code.CF.instrs) (fun at ->
        P.before at [ I.Nop; I.Iconst 7l; I.Pop ])
  in
  let code' = P.apply_insertions code insertions in
  let code' = P.refit_bounds subject.CF.pool ~params:1 ~is_static:true code' in
  let patched =
    CF.map_methods
      (fun m ->
        if m.CF.m_name = "f" then { m with CF.m_code = Some code' } else m)
      subject
  in
  List.iter
    (fun n ->
      check Alcotest.int
        (Printf.sprintf "f(%d) unchanged" n)
        (expect_f [ subject ] n)
        (expect_f [ patched ] n))
    [ 0; 5; 9; 10; 25 ]

let test_branch_targets_hit_inserted_code () =
  (* Instrument the "small" branch target with a counter bump; both the
     fallthrough path and the branch path must execute it. *)
  let counter =
    B.class_ "Ctr"
      ~fields:[ B.field ~flags:static "n" "I" ]
      [
        B.meth ~flags:static "bump" "()V"
          [
            B.Getstatic ("Ctr", "n", "I");
            B.Const 1;
            B.Add;
            B.Putstatic ("Ctr", "n", "I");
            B.Return;
          ];
        B.meth ~flags:static "get" "()I"
          [ B.Getstatic ("Ctr", "n", "I"); B.Ireturn ];
      ]
  in
  let code = code_of subject "f" "(I)I" in
  (* Find the index the Lt branch targets (the "small" label). *)
  let target =
    Array.to_list code.CF.instrs
    |> List.find_map (function I.If_icmp (I.Lt, t) -> Some t | _ -> None)
    |> Option.get
  in
  let pool = Bytecode.Cp.Builder.of_pool subject.CF.pool in
  let bump =
    I.Invokestatic
      (Bytecode.Cp.Builder.methodref pool ~cls:"Ctr" ~name:"bump" ~desc:"()V")
  in
  let code' = P.apply_insertions code [ P.before target [ bump ] ] in
  let patched =
    {
      (CF.map_methods
         (fun m ->
           if m.CF.m_name = "f" then { m with CF.m_code = Some code' } else m)
         subject)
      with
      CF.pool = Bytecode.Cp.Builder.to_pool pool;
    }
  in
  let vm = Jvm.Bootlib.fresh_vm () in
  List.iter (Jvm.Classreg.register vm.Jvm.Vmstate.reg) [ patched; counter ];
  (* n=5 takes the branch to "small"; the inserted bump must run. *)
  ignore (Jvm.Interp.invoke vm ~cls:"Subject" ~name:"f" ~desc:"(I)I" [ Jvm.Value.Int 5l ]);
  (match Jvm.Interp.invoke vm ~cls:"Ctr" ~name:"get" ~desc:"()I" [] with
  | Some (Jvm.Value.Int 1l) -> ()
  | Some v -> fail ("count after branch: " ^ Jvm.Value.to_string v)
  | None -> fail "no result");
  (* n=50 does not reach "small": count unchanged. *)
  ignore (Jvm.Interp.invoke vm ~cls:"Subject" ~name:"f" ~desc:"(I)I" [ Jvm.Value.Int 50l ]);
  match Jvm.Interp.invoke vm ~cls:"Ctr" ~name:"get" ~desc:"()I" [] with
  | Some (Jvm.Value.Int 1l) -> ()
  | _ -> fail "branch-not-taken ran inserted code"

let test_block_relative_targets () =
  (* An inserted block with an internal branch that skips to the end of
     the block (target = block length). *)
  let code = code_of subject "f" "(I)I" in
  let block =
    [ I.Iconst 1l; I.If_z (I.Ne, 4); I.Iconst 9l; I.Pop ]
    (* target 4 = one past block end - 0? block length is 4; jumping to
       4 lands on the original instruction *)
  in
  let code' = P.apply_insertions code [ P.before 0 block ] in
  let code' = P.refit_bounds subject.CF.pool ~params:1 ~is_static:true code' in
  let patched =
    CF.map_methods
      (fun m ->
        if m.CF.m_name = "f" then { m with CF.m_code = Some code' } else m)
      subject
  in
  check Alcotest.int "semantics preserved" 10 (expect_f [ patched ] 5)

let test_handlers_remapped () =
  let cls =
    B.class_ "H"
      [
        B.meth ~flags:static "f" "()I"
          ~handlers:[ ("try", "end", "catch", None) ]
          [
            B.Label "try";
            B.Const 1;
            B.Const 0;
            B.Div;
            B.Ireturn;
            B.Label "end";
            B.Label "catch";
            B.Pop;
            B.Const 42;
            B.Ireturn;
          ];
      ]
  in
  let code = code_of cls "f" "()I" in
  let insertions =
    List.init (Array.length code.CF.instrs) (fun at ->
        P.before at [ I.Nop ])
  in
  let code' = P.apply_insertions code insertions in
  let patched =
    CF.map_methods
      (fun m ->
        if m.CF.m_name = "f" then { m with CF.m_code = Some code' } else m)
      cls
  in
  match run_static [ patched ] "H" "f" "()I" [] with
  | Some (Jvm.Value.Int 42l) -> ()
  | _ -> fail "handler did not survive patching"

let test_instrument_method_entry_exit () =
  let cls = subject in
  let pool = Bytecode.Cp.Builder.of_pool cls.CF.pool in
  let probe name =
    [
      I.Ldc_str (Bytecode.Cp.Builder.string pool name);
      I.Invokestatic
        (Bytecode.Cp.Builder.methodref pool ~cls:"Probe" ~name:"hit"
           ~desc:"(Ljava/lang/String;)V");
    ]
  in
  let m = Option.get (CF.find_method cls "f" "(I)I") in
  let m' =
    P.instrument_method
      (Bytecode.Cp.Builder.to_pool pool)
      m ~entry:(probe "enter") ~before_return:(probe "exit")
  in
  let patched =
    {
      cls with
      CF.methods = [ m' ];
      pool = Bytecode.Cp.Builder.to_pool pool;
    }
  in
  let hits = ref [] in
  let vm = Jvm.Bootlib.fresh_vm () in
  let probe_cls =
    B.class_ "Probe" [ B.native_meth ~flags:(CF.Native :: static) "hit" "(Ljava/lang/String;)V" ]
  in
  Jvm.Classreg.register vm.Jvm.Vmstate.reg probe_cls;
  Jvm.Classreg.register vm.Jvm.Vmstate.reg patched;
  Jvm.Vmstate.register_native vm ~cls:"Probe" ~name:"hit"
    ~desc:"(Ljava/lang/String;)V" (fun _ args ->
      (match args with
      | [ Jvm.Value.Str s ] -> hits := s :: !hits
      | _ -> ());
      None);
  (match
     Jvm.Interp.invoke vm ~cls:"Subject" ~name:"f" ~desc:"(I)I"
       [ Jvm.Value.Int 3l ]
   with
  | Some (Jvm.Value.Int 6l) -> ()
  | _ -> fail "wrong result");
  check (Alcotest.list Alcotest.string) "enter/exit seen" [ "enter"; "exit" ]
    (List.rev !hits)

let test_filter_stacking () =
  let tag name =
    Rewrite.Filter.make ~name (fun cf ->
        Bytecode.Classfile.with_attribute cf ("tag." ^ name) "1")
  in
  let out =
    Rewrite.Filter.run_stack [ tag "a"; tag "b"; tag "c" ] subject
  in
  List.iter
    (fun n ->
      check Alcotest.bool ("tag " ^ n) true
        (CF.find_attribute out ("tag." ^ n) <> None))
    [ "a"; "b"; "c" ];
  (* A stacked filter behaves like the composition. *)
  let stacked = Rewrite.Filter.stack ~name:"all" [ tag "a"; tag "b" ] in
  let out2 = Rewrite.Filter.apply stacked subject in
  check Alcotest.bool "stacked = composed" true
    (CF.find_attribute out2 "tag.a" <> None
    && CF.find_attribute out2 "tag.b" <> None)

(* Property: random straight-line insertions into a verified method
   leave it verifiable and semantics-preserving. *)
let prop_random_insertions =
  QCheck.Test.make ~name:"random insertions preserve behaviour" ~count:200
    QCheck.(pair (list (int_bound 11)) (int_bound 100))
    (fun (points, n) ->
      let code = code_of subject "f" "(I)I" in
      let len = Array.length code.CF.instrs in
      let insertions =
        List.map
          (fun p -> P.before (p mod (len + 1)) [ I.Iconst 3l; I.Pop ])
          points
      in
      let code' = P.apply_insertions code insertions in
      let code' = P.refit_bounds subject.CF.pool ~params:1 ~is_static:true code' in
      let patched =
        CF.map_methods
          (fun m ->
            if m.CF.m_name = "f" then { m with CF.m_code = Some code' } else m)
          subject
      in
      expect_f [ patched ] n = expect_f [ subject ] n)

let () =
  Alcotest.run "rewrite"
    [
      ( "patch",
        [
          Alcotest.test_case "insert preserves semantics" `Quick
            test_insert_preserves_semantics;
          Alcotest.test_case "branch targets hit inserted code" `Quick
            test_branch_targets_hit_inserted_code;
          Alcotest.test_case "block-relative targets" `Quick
            test_block_relative_targets;
          Alcotest.test_case "handlers remapped" `Quick test_handlers_remapped;
          Alcotest.test_case "entry/exit instrumentation" `Quick
            test_instrument_method_entry_exit;
        ] );
      ("filter", [ Alcotest.test_case "stacking" `Quick test_filter_stacking ]);
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_random_insertions ] );
    ]
