(* Tests for the security service: policy model, XML language, static
   rewriting, enforcement manager, cache invalidation — and the
   end-to-end property that the DVM can protect operations the
   monolithic JDK cannot (file read). *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile
module P = Security.Policy

let check = Alcotest.check
let fail = Alcotest.fail
let static = [ CF.Public; CF.Static ]

(* --- Policy model. --- *)

let test_matrix_decide () =
  let p =
    P.empty
    |> fun p ->
    P.with_rule p ~sid:"applets" ~permission:"file.open" ~allow:false
    |> fun p -> P.with_rule p ~sid:"applets" ~permission:"property.get" ~allow:true
  in
  check Alcotest.bool "deny" false
    (P.decide p ~sid:"applets" ~permission:"file.open");
  check Alcotest.bool "grant" true
    (P.decide p ~sid:"applets" ~permission:"property.get");
  check Alcotest.bool "default deny" false
    (P.decide p ~sid:"applets" ~permission:"unlisted");
  check Alcotest.bool "other sid default" false
    (P.decide p ~sid:"other" ~permission:"file.open")

let test_with_rule_overrides () =
  let p = P.with_rule P.empty ~sid:"a" ~permission:"x" ~allow:true in
  let v1 = p.P.version in
  let p = P.with_rule p ~sid:"a" ~permission:"x" ~allow:false in
  check Alcotest.bool "version bumped" true (p.P.version > v1);
  check Alcotest.bool "override" false (P.decide p ~sid:"a" ~permission:"x");
  check Alcotest.int "no duplicate rules" 1 (List.length p.P.rules)

let test_resource_and_principal_maps () =
  let p =
    {
      P.empty with
      P.resources = [ ("/tmp/", "scratch"); ("/", "rootfs") ];
      principals = [ ("applet/", "applets"); ("", "users") ];
    }
  in
  check (Alcotest.option Alcotest.string) "longest listed prefix first"
    (Some "scratch")
    (P.domain_of_resource p "/tmp/x");
  check (Alcotest.option Alcotest.string) "fallback" (Some "rootfs")
    (P.domain_of_resource p "/etc/passwd");
  check (Alcotest.option Alcotest.string) "principal" (Some "applets")
    (P.domain_of_class p "applet/Game");
  check (Alcotest.option Alcotest.string) "default principal" (Some "users")
    (P.domain_of_class p "corp/App")

(* --- XML policy language. --- *)

let sample_xml =
  {|<?xml version="1.0"?>
    <policy default="deny">
      <!-- the applet domain -->
      <domain name="applets">
        <grant permission="property.get"/>
        <deny permission="file.open"/>
      </domain>
      <domain name="trusted">
        <grant permission="file.open"/>
        <grant permission="file.read"/>
      </domain>
      <resource prefix="/tmp/" domain="scratch"/>
      <operation permission="file.open" class="java/io/FileInputStream" method="open"/>
      <operation permission="file.read" class="java/io/FileInputStream" method="read"/>
      <principal classprefix="applet/" domain="applets"/>
    </policy>|}

let test_xml_parse () =
  let p = Security.Policy_xml.parse sample_xml in
  check Alcotest.bool "default deny" false p.P.default_allow;
  check Alcotest.int "rules" 4 (List.length p.P.rules);
  check Alcotest.int "operations" 2 (List.length p.P.operations);
  check Alcotest.bool "applets property.get" true
    (P.decide p ~sid:"applets" ~permission:"property.get");
  check Alcotest.bool "applets file.open denied" false
    (P.decide p ~sid:"applets" ~permission:"file.open");
  check Alcotest.bool "trusted file.open" true
    (P.decide p ~sid:"trusted" ~permission:"file.open");
  check Alcotest.int "ops for open" 1
    (List.length
       (P.operations_for p ~cls:"java/io/FileInputStream" ~meth:"open"))

let test_xml_entities_and_errors () =
  let p =
    Security.Policy_xml.parse
      {|<policy default="allow"><domain name="a&amp;b"><grant permission="x"/></domain></policy>|}
  in
  check Alcotest.bool "entity decoded" true
    (P.decide p ~sid:"a&b" ~permission:"x");
  List.iter
    (fun bad ->
      match Security.Policy_xml.parse bad with
      | _ -> fail ("accepted: " ^ bad)
      | exception Security.Policy_xml.Parse_error _ -> ())
    [
      "";
      "<policy";
      "<policy default='maybe'></policy>";
      "<notpolicy/>";
      "<policy><domain></domain></policy>" (* missing name *);
      "<policy><domain name='d'><frob/></domain></policy>";
      "<policy></policy";
      "<policy default='deny'></policy>junk";
    ]

(* --- Static rewriting + enforcement. --- *)

let policy = Security.Policy_xml.parse sample_xml

(* An app that opens and reads a file. *)
let file_app =
  B.class_ "applet/FileGrabber"
    [
      B.meth ~flags:static "grab" "()I"
        [
          B.New "java/io/FileInputStream";
          B.Dup;
          B.Push_str "/secret";
          B.Invokespecial
            ("java/io/FileInputStream", "<init>", "(Ljava/lang/String;)V");
          B.Invokevirtual ("java/io/FileInputStream", "read", "()I");
          B.Ireturn;
        ];
    ]

let dvm_client ~sid classes =
  let server = Security.Server.create policy in
  let vm = Jvm.Bootlib.fresh_vm () in
  let enf = Security.Enforcement.install vm ~server ~sid in
  List.iter (Jvm.Classreg.register vm.Jvm.Vmstate.reg) classes;
  Hashtbl.replace vm.Jvm.Vmstate.files "/secret" "top secret";
  (vm, enf, server)

let rewritten = Security.Rewriter.rewrite_class policy file_app

let test_rewriter_inserts_checks () =
  let counters = Security.Rewriter.fresh_counters () in
  let _ = Security.Rewriter.rewrite_class ~counters policy file_app in
  (* one open (inside <init> call path? no: the open call is inside the
     boot library; the app's call sites are <init> (not matched) and
     read (matched)). Exactly the read site is instrumented here plus
     any matched sites. *)
  check Alcotest.bool "checks inserted" true (counters.Security.Rewriter.checks_inserted >= 1);
  let dis = Bytecode.Disasm.class_to_string rewritten in
  let contains sub =
    let n = String.length dis and m = String.length sub in
    let rec go i = i + m <= n && (String.sub dis i m = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "calls enforcement" true (contains "dvm/Enforcement")

let test_denied_operation_throws () =
  (* applets domain: file.read not granted, default deny. *)
  let vm, enf, _ = dvm_client ~sid:"applets" [ rewritten ] in
  (match Jvm.Interp.invoke vm ~cls:"applet/FileGrabber" ~name:"grab" ~desc:"()I" [] with
  | _ -> fail "expected SecurityException"
  | exception Jvm.Vmstate.Throw v ->
    check Alcotest.string "security exception" "java/lang/SecurityException"
      (Jvm.Value.class_of v));
  check Alcotest.bool "denial recorded" true (enf.Security.Enforcement.denials >= 1)

let test_granted_operation_proceeds () =
  let vm, _, _ = dvm_client ~sid:"trusted" [ rewritten ] in
  match Jvm.Interp.invoke vm ~cls:"applet/FileGrabber" ~name:"grab" ~desc:"()I" [] with
  | Some (Jvm.Value.Int n) ->
    check Alcotest.int32 "read first byte" (Int32.of_int (Char.code 't')) n
  | _ -> fail "expected result"

let test_jdk_cannot_protect_read () =
  (* The monolithic JDK hook guards open but not read: a leaked handle
     reads freely — the paper's motivating hole. *)
  let vm = Jvm.Bootlib.fresh_vm () in
  Hashtbl.replace vm.Jvm.Vmstate.files "/secret" "top secret";
  let checked = ref [] in
  vm.Jvm.Vmstate.security_hook <- Some (fun op -> checked := op :: !checked);
  Jvm.Classreg.register vm.Jvm.Vmstate.reg file_app (* original, unrewritten *);
  (match Jvm.Interp.invoke vm ~cls:"applet/FileGrabber" ~name:"grab" ~desc:"()I" [] with
  | Some (Jvm.Value.Int _) -> ()
  | _ -> fail "expected read to succeed");
  check Alcotest.bool "open was checked" true (List.mem "file.open" !checked);
  check Alcotest.bool "read was never checked" false
    (List.mem "file.read" !checked)

let test_first_check_downloads_then_caches () =
  let vm, enf, server = dvm_client ~sid:"trusted" [ rewritten ] in
  ignore (Jvm.Interp.invoke vm ~cls:"applet/FileGrabber" ~name:"grab" ~desc:"()I" []);
  check Alcotest.int "one download" 1 enf.Security.Enforcement.downloads;
  let before = enf.Security.Enforcement.downloads in
  ignore (Jvm.Interp.invoke vm ~cls:"applet/FileGrabber" ~name:"grab" ~desc:"()I" []);
  check Alcotest.int "no re-download" before enf.Security.Enforcement.downloads;
  check Alcotest.bool "cache hits" true (enf.Security.Enforcement.cache_hits >= 1);
  check Alcotest.int "server downloads counted" 1 server.Security.Server.downloads

let test_invalidation_propagates () =
  let vm, enf, server = dvm_client ~sid:"trusted" [ rewritten ] in
  (* First run succeeds. *)
  (match Jvm.Interp.invoke vm ~cls:"applet/FileGrabber" ~name:"grab" ~desc:"()I" [] with
  | Some _ -> ()
  | None -> fail "expected result");
  (* Central policy change: revoke file.read from trusted. *)
  Security.Server.update server (fun p ->
      P.with_rule p ~sid:"trusted" ~permission:"file.read" ~allow:false);
  check Alcotest.bool "client invalidated" true
    (enf.Security.Enforcement.invalidations >= 1);
  (* Next run re-downloads the policy and is denied. *)
  match Jvm.Interp.invoke vm ~cls:"applet/FileGrabber" ~name:"grab" ~desc:"()I" [] with
  | _ -> fail "expected denial after revocation"
  | exception Jvm.Vmstate.Throw v ->
    check Alcotest.string "security exception" "java/lang/SecurityException"
      (Jvm.Value.class_of v)

let test_rewrite_preserves_behaviour_when_granted () =
  (* With everything granted, rewritten output equals original. *)
  let allow_all =
    Security.Policy_xml.parse
      {|<policy default="allow">
          <operation permission="file.read" class="java/io/FileInputStream" method="read"/>
        </policy>|}
  in
  let rw = Security.Rewriter.rewrite_class allow_all file_app in
  let run cls =
    let server = Security.Server.create allow_all in
    let vm = Jvm.Bootlib.fresh_vm () in
    ignore (Security.Enforcement.install vm ~server ~sid:"any");
    Hashtbl.replace vm.Jvm.Vmstate.files "/secret" "z";
    Jvm.Classreg.register vm.Jvm.Vmstate.reg cls;
    match Jvm.Interp.invoke vm ~cls:"applet/FileGrabber" ~name:"grab" ~desc:"()I" [] with
    | Some (Jvm.Value.Int n) -> n
    | _ -> fail "no result"
  in
  check Alcotest.int32 "same result" (run file_app) (run rw)

(* --- Named-resource restrictions (DTOS object SIDs). --- *)

let resource_policy =
  Security.Policy_xml.parse
    {|<policy default="deny">
        <domain name="apps">
          <grant permission="file.open"/>
          <grant permission="file.read"/>
          <deny permission="file.open@homedirs"/>
        </domain>
        <resource prefix="/home/" domain="homedirs"/>
        <operation permission="file.open" resourcearg="last"
                   class="java/io/FileInputStream" method="&lt;init&gt;"/>
        <operation permission="file.read"
                   class="java/io/FileInputStream" method="read"/>
      </policy>|}

let opener path =
  B.class_ "apps/Opener"
    [
      B.meth ~flags:static "grab" "()I"
        [
          B.New "java/io/FileInputStream";
          B.Dup;
          B.Push_str path;
          B.Invokespecial
            ("java/io/FileInputStream", "<init>", "(Ljava/lang/String;)V");
          B.Invokevirtual ("java/io/FileInputStream", "read", "()I");
          B.Ireturn;
        ];
    ]

let run_opener path =
  let app = Security.Rewriter.rewrite_class resource_policy (opener path) in
  let server = Security.Server.create resource_policy in
  let vm = Jvm.Bootlib.fresh_vm () in
  ignore (Security.Enforcement.install vm ~server ~sid:"apps");
  Hashtbl.replace vm.Jvm.Vmstate.files path "zz";
  Jvm.Classreg.register vm.Jvm.Vmstate.reg app;
  match Jvm.Interp.invoke vm ~cls:"apps/Opener" ~name:"grab" ~desc:"()I" [] with
  | Some (Jvm.Value.Int _) -> `Allowed
  | Some _ | None -> fail "unexpected result"
  | exception Jvm.Vmstate.Throw v ->
    if Jvm.Value.class_of v = "java/lang/SecurityException" then `Denied
    else fail ("unexpected throw: " ^ Jvm.Interp.describe_throwable v)

let test_resource_qualified_checks () =
  (* plain file.open is granted: /tmp files open fine *)
  check Alcotest.bool "outside protected prefix allowed" true
    (run_opener "/tmp/scratch" = `Allowed);
  (* but the homedirs resource domain is denied for this subject *)
  check Alcotest.bool "protected prefix denied" true
    (run_opener "/home/alice/mail" = `Denied)

let test_resource_permission_mapping () =
  check Alcotest.string "qualified" "file.open@homedirs"
    (Security.Policy.resource_permission resource_policy
       ~permission:"file.open" ~resource:"/home/x");
  check Alcotest.string "unqualified" "file.open"
    (Security.Policy.resource_permission resource_policy
       ~permission:"file.open" ~resource:"/var/x")

let test_resource_check_preserves_stack () =
  (* The Dup-based resource check must not disturb the call: the opened
     stream still works and the program result is unchanged vs an
     all-allowing policy. *)
  let allow_all =
    Security.Policy_xml.parse
      {|<policy default="allow">
          <resource prefix="/data/" domain="datastore"/>
          <operation permission="file.open" resourcearg="last"
                     class="java/io/FileInputStream" method="&lt;init&gt;"/>
        </policy>|}
  in
  let app = Security.Rewriter.rewrite_class allow_all (opener "/data/f") in
  let server = Security.Server.create allow_all in
  let vm = Jvm.Bootlib.fresh_vm () in
  ignore (Security.Enforcement.install vm ~server ~sid:"apps");
  Hashtbl.replace vm.Jvm.Vmstate.files "/data/f" "Q";
  Jvm.Classreg.register vm.Jvm.Vmstate.reg app;
  match Jvm.Interp.invoke vm ~cls:"apps/Opener" ~name:"grab" ~desc:"()I" [] with
  | Some (Jvm.Value.Int n) ->
    check Alcotest.int32 "read the right byte" (Int32.of_int (Char.code 'Q')) n
  | _ -> fail "resource check corrupted the call"

(* --- Loop-invariant hoisting vs exception handlers. --- *)

let hoist_policy =
  Security.Policy_xml.parse
    {|<policy default="allow">
        <operation permission="op.use" class="util/Op" method="use"/>
      </policy>|}

(* The builder's counted-loop idiom with a protected call in the body:
   eligible for preheader hoisting when nothing else interferes. *)
let counted_loop_body =
  [
    B.Const 3;
    B.Istore 1;
    B.Label "head";
    B.Iload 1;
    B.If_z (Bytecode.Instr.Le, "exit");
    B.Invokestatic ("util/Op", "use", "()V");
    B.Inc (1, -1);
    B.Goto "head";
    B.Label "exit";
    B.Const 0;
    B.Ireturn;
  ]

let test_hoist_plain_loop () =
  let cls =
    B.class_ "loop/Plain" [ B.meth ~flags:static "f" "()I" counted_loop_body ]
  in
  let counters = Security.Rewriter.fresh_counters () in
  let _ = Security.Rewriter.rewrite_class ~counters hoist_policy cls in
  check Alcotest.int "uncovered loop hoists its invariant check" 1
    counters.Security.Rewriter.checks_hoisted

(* Regression: a handler covering the loop body can catch the denial
   and observe locals, so the in-loop check (which throws *after* the
   iteration's stores) is not equivalent to a hoisted one (which
   throws before them). Hoisting must be refused. *)
let test_hoist_blocked_by_handler () =
  let cls =
    B.class_ "loop/Covered"
      [
        B.meth ~flags:static
          ~handlers:[ ("head", "exit", "h", None) ]
          "f" "()I"
          (counted_loop_body
          @ [ B.Label "h"; B.Pop; B.Const 1; B.Ireturn ]);
      ]
  in
  let counters = Security.Rewriter.fresh_counters () in
  let _ = Security.Rewriter.rewrite_class ~counters hoist_policy cls in
  check Alcotest.int "handler-covered loop refuses hoisting" 0
    counters.Security.Rewriter.checks_hoisted;
  check Alcotest.int "the in-loop check stays" 1
    counters.Security.Rewriter.checks_inserted

(* Property: the enforcement decision always equals the central policy
   decision, before and after arbitrary rule flips. *)
let prop_enforcement_agrees_with_policy =
  QCheck.Test.make ~name:"enforcement cache coherent with server" ~count:100
    QCheck.(list (pair (pair (int_bound 3) (int_bound 3)) bool))
    (fun flips ->
      let server = Security.Server.create policy in
      let enf_vm = Jvm.Bootlib.fresh_vm () in
      let enf = Security.Enforcement.install enf_vm ~server ~sid:"applets" in
      let sids = [| "applets"; "trusted"; "scratch"; "other" |] in
      let perms = [| "file.open"; "file.read"; "property.get"; "misc" |] in
      List.for_all
        (fun ((si, pi), allow) ->
          Security.Server.update server (fun p ->
              Security.Policy.with_rule p ~sid:sids.(si) ~permission:perms.(pi)
                ~allow);
          (* After every change the client's answer for every
             permission must match the central matrix for its sid. *)
          Array.for_all
            (fun perm ->
              Security.Enforcement.allowed enf perm
              = Security.Policy.decide (Security.Server.policy server)
                  ~sid:"applets" ~permission:perm)
            perms)
        flips)

let () =
  Alcotest.run "security"
    [
      ( "policy",
        [
          Alcotest.test_case "matrix decide" `Quick test_matrix_decide;
          Alcotest.test_case "rule override" `Quick test_with_rule_overrides;
          Alcotest.test_case "resource/principal maps" `Quick
            test_resource_and_principal_maps;
        ] );
      ( "xml",
        [
          Alcotest.test_case "parse" `Quick test_xml_parse;
          Alcotest.test_case "entities and errors" `Quick
            test_xml_entities_and_errors;
        ] );
      ( "enforcement",
        [
          Alcotest.test_case "rewriter inserts checks" `Quick
            test_rewriter_inserts_checks;
          Alcotest.test_case "denied throws" `Quick test_denied_operation_throws;
          Alcotest.test_case "granted proceeds" `Quick
            test_granted_operation_proceeds;
          Alcotest.test_case "JDK cannot protect read" `Quick
            test_jdk_cannot_protect_read;
          Alcotest.test_case "download then cache" `Quick
            test_first_check_downloads_then_caches;
          Alcotest.test_case "invalidation propagates" `Quick
            test_invalidation_propagates;
          Alcotest.test_case "rewrite preserves behaviour" `Quick
            test_rewrite_preserves_behaviour_when_granted;
          Alcotest.test_case "resource-qualified checks" `Quick
            test_resource_qualified_checks;
          Alcotest.test_case "resource permission mapping" `Quick
            test_resource_permission_mapping;
          Alcotest.test_case "resource check preserves stack" `Quick
            test_resource_check_preserves_stack;
          QCheck_alcotest.to_alcotest prop_enforcement_agrees_with_policy;
        ] );
      ( "hoisting",
        [
          Alcotest.test_case "uncovered loop hoists" `Quick
            test_hoist_plain_loop;
          Alcotest.test_case "handler-covered loop refuses" `Quick
            test_hoist_blocked_by_handler;
        ] );
    ]
