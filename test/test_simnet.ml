(* Tests for the discrete-event engine, links and hosts. *)

let check = Alcotest.check

let test_event_order () =
  let e = Simnet.Engine.create () in
  let order = ref [] in
  let at t tag = Simnet.Engine.schedule_at e t (fun () -> order := tag :: !order) in
  at 30L "c";
  at 10L "a";
  at 20L "b";
  at 10L "a2" (* FIFO tie-break *);
  Simnet.Engine.run e;
  check (Alcotest.list Alcotest.string) "order" [ "a"; "a2"; "b"; "c" ]
    (List.rev !order)

let test_clock_advances () =
  let e = Simnet.Engine.create () in
  let seen = ref [] in
  Simnet.Engine.schedule e ~delay:(Simnet.Engine.ms 5) (fun () ->
      seen := Simnet.Engine.now e :: !seen;
      Simnet.Engine.schedule e ~delay:(Simnet.Engine.ms 7) (fun () ->
          seen := Simnet.Engine.now e :: !seen));
  Simnet.Engine.run e;
  check (Alcotest.list Alcotest.int64) "times" [ 5000L; 12000L ] (List.rev !seen)

let test_run_until () =
  let e = Simnet.Engine.create () in
  let fired = ref 0 in
  Simnet.Engine.schedule_at e 100L (fun () -> incr fired);
  Simnet.Engine.schedule_at e 200L (fun () -> incr fired);
  Simnet.Engine.run ~until:150L e;
  check Alcotest.int "only first" 1 !fired;
  check Alcotest.int64 "clock at horizon" 150L (Simnet.Engine.now e);
  Simnet.Engine.run e;
  check Alcotest.int "rest runs" 2 !fired

let test_trace_cap () =
  let e = Simnet.Engine.create () in
  Simnet.Engine.set_tracing e true;
  Simnet.Engine.set_trace_cap e (Some 3);
  for i = 1 to 5 do
    Simnet.Engine.record e (Printf.sprintf "r%d" i)
  done;
  check Alcotest.int "buffer capped" 3 (List.length (Simnet.Engine.trace e));
  check Alcotest.int "overflow counted" 2 (Simnet.Engine.trace_dropped e);
  check
    (Alcotest.list Alcotest.string)
    "oldest records kept" [ "r1"; "r2"; "r3" ]
    (List.map snd (Simnet.Engine.trace e));
  (* lifting the cap resumes recording; dropped stays as history *)
  Simnet.Engine.set_trace_cap e None;
  Simnet.Engine.record e "r6";
  check Alcotest.int "uncapped grows" 4 (List.length (Simnet.Engine.trace e));
  check Alcotest.int "dropped untouched" 2 (Simnet.Engine.trace_dropped e);
  (* re-enabling tracing clears both the buffer and the counter *)
  Simnet.Engine.set_tracing e true;
  check Alcotest.int "cleared" 0 (List.length (Simnet.Engine.trace e));
  check Alcotest.int "dropped reset" 0 (Simnet.Engine.trace_dropped e);
  check Alcotest.bool "negative cap rejected" true
    (try
       Simnet.Engine.set_trace_cap e (Some (-1));
       false
     with Invalid_argument _ -> true)

let test_past_events_clamped () =
  let e = Simnet.Engine.create () in
  let t = ref (-1L) in
  Simnet.Engine.schedule_at e 100L (fun () ->
      (* scheduling in the past runs "now" *)
      Simnet.Engine.schedule_at e 5L (fun () -> t := Simnet.Engine.now e));
  Simnet.Engine.run e;
  check Alcotest.int64 "clamped to now" 100L !t

let test_link_bandwidth_math () =
  (* 10 Mb/s: 1250 bytes take 1 ms on the wire. *)
  let e = Simnet.Engine.create () in
  let link = Simnet.Link.ethernet_10mb e in
  check Alcotest.int64 "tx time" 1000L (Simnet.Link.tx_time link ~bytes:1250);
  let done_at = ref 0L in
  Simnet.Link.transfer link ~bytes:1250 (fun () -> done_at := Simnet.Engine.now e);
  Simnet.Engine.run e;
  (* tx 1000 + latency 500 *)
  check Alcotest.int64 "arrival" 1500L !done_at

let test_link_serializes () =
  let e = Simnet.Engine.create () in
  let link = Simnet.Link.ethernet_10mb e in
  let arrivals = ref [] in
  Simnet.Link.transfer link ~bytes:1250 (fun () ->
      arrivals := Simnet.Engine.now e :: !arrivals);
  Simnet.Link.transfer link ~bytes:1250 (fun () ->
      arrivals := Simnet.Engine.now e :: !arrivals);
  Simnet.Engine.run e;
  (* Second transmission queues behind the first: 2000 + 500. *)
  check (Alcotest.list Alcotest.int64) "arrivals" [ 1500L; 2500L ]
    (List.rev !arrivals)

let test_closed_form_matches () =
  check Alcotest.int "closed form" 1500
    (Simnet.Link.transfer_time_us ~bandwidth_bps:10_000_000 ~latency_us:500
       ~bytes:1250)

let test_host_compute_serializes () =
  let e = Simnet.Engine.create () in
  let h = Simnet.Host.create e ~name:"h" in
  let arrivals = ref [] in
  Simnet.Host.compute h ~cost_us:100L (fun () ->
      arrivals := Simnet.Engine.now e :: !arrivals);
  Simnet.Host.compute h ~cost_us:50L (fun () ->
      arrivals := Simnet.Engine.now e :: !arrivals);
  Simnet.Engine.run e;
  check (Alcotest.list Alcotest.int64) "fifo cpu" [ 100L; 150L ]
    (List.rev !arrivals)

let test_host_cpu_factor () =
  let e = Simnet.Engine.create () in
  let fast = Simnet.Host.create ~cpu_factor:2.0 e ~name:"fast" in
  check Alcotest.int64 "half cost" 50L
    (Simnet.Host.effective_cost fast ~cost_us:100L)

let test_memory_pressure_slows () =
  let e = Simnet.Engine.create () in
  let h = Simnet.Host.create ~mem_capacity:1000 ~thrash_factor:10.0 e ~name:"h" in
  let base = Simnet.Host.effective_cost h ~cost_us:100L in
  Simnet.Host.allocate h 2000;
  (* 2x over-committed *)
  let slowed = Simnet.Host.effective_cost h ~cost_us:100L in
  check Alcotest.bool "slower under pressure" true (slowed > base);
  Simnet.Host.release h 2000;
  check Alcotest.int64 "recovers" base (Simnet.Host.effective_cost h ~cost_us:100L)

let prop_heap_orders_events =
  QCheck.Test.make ~name:"events fire in time order" ~count:100
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let e = Simnet.Engine.create () in
      let fired = ref [] in
      List.iter
        (fun t ->
          Simnet.Engine.schedule_at e (Int64.of_int t) (fun () ->
              fired := Simnet.Engine.now e :: !fired))
        times;
      Simnet.Engine.run e;
      let fired = List.rev !fired in
      (* fired times are sorted and a permutation of the input *)
      List.sort compare fired = fired
      && List.sort compare (List.map Int64.of_int times) = List.sort compare fired)

let () =
  Alcotest.run "simnet"
    [
      ( "engine",
        [
          Alcotest.test_case "event order" `Quick test_event_order;
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "past events clamped" `Quick
            test_past_events_clamped;
          Alcotest.test_case "trace cap and dropped counter" `Quick
            test_trace_cap;
          QCheck_alcotest.to_alcotest prop_heap_orders_events;
        ] );
      ( "link",
        [
          Alcotest.test_case "bandwidth math" `Quick test_link_bandwidth_math;
          Alcotest.test_case "serializes" `Quick test_link_serializes;
          Alcotest.test_case "closed form" `Quick test_closed_form_matches;
        ] );
      ( "host",
        [
          Alcotest.test_case "cpu serializes" `Quick
            test_host_compute_serializes;
          Alcotest.test_case "cpu factor" `Quick test_host_cpu_factor;
          Alcotest.test_case "memory pressure" `Quick
            test_memory_pressure_slows;
        ] );
    ]
