(* Tests for the telemetry registry: span nesting and ordering, counter
   and histogram arithmetic, the Chrome trace exporter's JSON escaping,
   and the disabled-mode no-op contract. *)

let check = Alcotest.check

(* A deterministic wall clock: each registry under test gets its own
   counter that advances a fixed step per reading. *)
let fake_clock ?(step = 10L) () =
  let now = ref 0L in
  fun () ->
    let t = !now in
    now := Int64.add !now step;
    t

let fresh () =
  let t = Telemetry.create () in
  Telemetry.set_wall_clock t (fake_clock ());
  Telemetry.enable t;
  t

let test_counters () =
  let t = fresh () in
  Telemetry.incr t "a";
  Telemetry.incr t "a";
  Telemetry.add t "a" 40L;
  Telemetry.incr t "b";
  check Alcotest.int64 "a" 42L (Telemetry.counter_value t "a");
  check Alcotest.int64 "b" 1L (Telemetry.counter_value t "b");
  check Alcotest.int64 "absent" 0L (Telemetry.counter_value t "zzz");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int64))
    "sorted"
    [ ("a", 42L); ("b", 1L) ]
    (Telemetry.counters t);
  Telemetry.set_gauge t "g" 7L;
  Telemetry.set_gauge t "g" 3L;
  check Alcotest.int64 "gauge keeps last" 3L (Telemetry.gauge_value t "g");
  Telemetry.reset t;
  check Alcotest.int64 "reset" 0L (Telemetry.counter_value t "a")

let test_histogram () =
  let t = fresh () in
  List.iter (Telemetry.observe t "h") [ 1L; 2L; 4L; 100L ];
  match Telemetry.histogram_stats t "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
    check Alcotest.int "count" 4 s.Telemetry.count;
    check Alcotest.int64 "sum" 107L s.Telemetry.sum_us;
    check Alcotest.int64 "min" 1L s.Telemetry.min_us;
    check Alcotest.int64 "max" 100L s.Telemetry.max_us;
    (* p50/p95 are bucket upper bounds: 2 falls in bucket [2,4), 100 in
       [64,128). *)
    check Alcotest.bool "p50 bounds 2" true
      (s.Telemetry.p50_us >= 2L && s.Telemetry.p50_us <= 4L);
    check Alcotest.bool "p95 bounds 100" true
      (s.Telemetry.p95_us >= 100L && s.Telemetry.p95_us <= 128L)

let test_span_nesting () =
  let t = fresh () in
  let r =
    Telemetry.with_span t "outer" (fun () ->
        Telemetry.with_span t ~cat:"sub" "inner" (fun () -> ());
        17)
  in
  check Alcotest.int "thunk value" 17 r;
  (* Completion order: inner closes first. *)
  match Telemetry.spans t with
  | [ inner; outer ] ->
    check Alcotest.string "inner name" "inner" inner.Telemetry.sp_name;
    check Alcotest.string "outer name" "outer" outer.Telemetry.sp_name;
    check Alcotest.string "inner cat" "sub" inner.Telemetry.sp_cat;
    check Alcotest.int "inner depth" 1 inner.Telemetry.sp_depth;
    check Alcotest.int "outer depth" 0 outer.Telemetry.sp_depth;
    check Alcotest.bool "inner within outer" true
      (inner.Telemetry.sp_wall_start >= outer.Telemetry.sp_wall_start
      && inner.Telemetry.sp_wall_end <= outer.Telemetry.sp_wall_end)
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_span_on_exception () =
  let t = fresh () in
  (try
     Telemetry.with_span t "boom" (fun () -> failwith "no")
   with Failure _ -> ());
  check Alcotest.int "span recorded despite raise" 1 (Telemetry.span_count t);
  (* Depth must unwind so later spans are top-level again. *)
  Telemetry.with_span t "after" (fun () -> ());
  match List.rev (Telemetry.spans t) with
  | after :: _ -> check Alcotest.int "depth unwound" 0 after.Telemetry.sp_depth
  | [] -> Alcotest.fail "no spans"

let test_span_observe_hist () =
  let t = fresh () in
  Telemetry.with_span t ~observe_hist:"lat" "work" (fun () -> ());
  match Telemetry.histogram_stats t "lat" with
  | Some s -> check Alcotest.int "one observation" 1 s.Telemetry.count
  | None -> Alcotest.fail "observe_hist did not record"

let test_span_observe_hist_sim () =
  (* Regression: with a sim clock attached, [observe_hist] must record
     the simulated duration, not the (nondeterministic) wall one —
     otherwise seeded benches stop being byte-reproducible. *)
  let t = fresh () in
  let sim = ref 1000L in
  Telemetry.set_sim_clock t (Some (fun () -> !sim));
  Telemetry.with_span t ~observe_hist:"lat" "work" (fun () -> sim := 4000L);
  (match Telemetry.histogram_stats t "lat" with
  | Some s ->
    check Alcotest.int64 "sim duration observed" 3000L s.Telemetry.sum_us
  | None -> Alcotest.fail "observe_hist did not record");
  (* detached again: falls back to the wall clock (fake: 10us/reading) *)
  Telemetry.set_sim_clock t None;
  Telemetry.with_span t ~observe_hist:"wall_lat" "work" (fun () -> ());
  match Telemetry.histogram_stats t "wall_lat" with
  | Some s ->
    check Alcotest.bool "wall fallback nonzero" true
      (Int64.compare s.Telemetry.sum_us 0L > 0)
  | None -> Alcotest.fail "wall fallback did not record"

let test_sim_clock () =
  let t = fresh () in
  let sim = ref 1000L in
  Telemetry.set_sim_clock t (Some (fun () -> !sim));
  Telemetry.with_span t "simmed" (fun () -> sim := 2500L);
  Telemetry.set_sim_clock t None;
  Telemetry.with_span t "unsimmed" (fun () -> ());
  match Telemetry.spans t with
  | [ simmed; unsimmed ] ->
    check
      (Alcotest.option Alcotest.int64)
      "sim start" (Some 1000L) simmed.Telemetry.sp_sim_start;
    check
      (Alcotest.option Alcotest.int64)
      "sim end" (Some 2500L) simmed.Telemetry.sp_sim_end;
    check
      (Alcotest.option Alcotest.int64)
      "detached" None unsimmed.Telemetry.sp_sim_start
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_json_escape () =
  check Alcotest.string "quotes" {|a\"b|} (Telemetry.json_escape {|a"b|});
  check Alcotest.string "backslash" {|a\\b|} (Telemetry.json_escape {|a\b|});
  check Alcotest.string "newline" {|a\nb|} (Telemetry.json_escape "a\nb");
  check Alcotest.string "control" {|\u0001|} (Telemetry.json_escape "\x01")

let test_chrome_trace_valid () =
  let t = fresh () in
  Telemetry.with_span t ~cat:"c1" ~args:[ ("k", "v\"with\nnasties") ]
    "sp\"an" (fun () -> ());
  Telemetry.incr t "hits";
  let s = Telemetry.chrome_trace t in
  (* Structurally valid JSON array: balanced brackets/braces and every
     quote escaped. A tiny tokenizer beats trusting eyeballs. *)
  let depth = ref 0 and in_str = ref false and esc = ref false in
  String.iter
    (fun c ->
      if !esc then esc := false
      else if !in_str then begin
        if c = '\\' then esc := true else if c = '"' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '[' | '{' -> incr depth
        | ']' | '}' -> decr depth
        | '\n' | ',' | ':' | ' ' -> ()
        | _ -> ())
    s;
  check Alcotest.int "balanced" 0 !depth;
  check Alcotest.bool "string closed" false !in_str;
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "has X event" true (contains {|"ph":"X"|});
  check Alcotest.bool "escaped name survives" true (contains {|sp\"an|})

let test_metrics_json_valid () =
  let t = fresh () in
  Telemetry.incr t "hits";
  Telemetry.set_gauge t "depth" 7L;
  List.iter (Telemetry.observe t "lat\"ency") [ 3L; 9L ];
  let s = Telemetry.metrics_json t in
  (* Same tokenizer as the Chrome-trace check: balanced structure,
     every quote closed. *)
  let depth = ref 0 and in_str = ref false and esc = ref false in
  String.iter
    (fun c ->
      if !esc then esc := false
      else if !in_str then begin
        if c = '\\' then esc := true else if c = '"' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '[' | '{' -> incr depth
        | ']' | '}' -> decr depth
        | _ -> ())
    s;
  check Alcotest.int "balanced" 0 !depth;
  check Alcotest.bool "string closed" false !in_str;
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "counters object" true (contains {|"counters"|});
  check Alcotest.bool "gauges object" true (contains {|"gauges"|});
  check Alcotest.bool "histograms array" true (contains {|"histograms"|});
  check Alcotest.bool "counter value present" true (contains {|"hits":1|});
  check Alcotest.bool "gauge value present" true (contains {|"depth":7|});
  check Alcotest.bool "histogram name escaped" true (contains {|lat\"ency|})

let test_disabled_noop () =
  let t = Telemetry.create () in
  check Alcotest.bool "disabled by default" false (Telemetry.enabled t);
  Telemetry.incr t "c";
  Telemetry.observe t "h" 5L;
  Telemetry.set_gauge t "g" 5L;
  let r = Telemetry.with_span t "s" (fun () -> 99) in
  check Alcotest.int "thunk still runs" 99 r;
  check Alcotest.int "no spans" 0 (Telemetry.span_count t);
  check Alcotest.int64 "no counters" 0L (Telemetry.counter_value t "c");
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int64)) "no gauges"
    [] (Telemetry.gauges t);
  check Alcotest.bool "no histograms" true (Telemetry.histograms t = [])

let test_span_cap () =
  let t = Telemetry.create ~max_spans:3 () in
  Telemetry.enable t;
  for i = 1 to 5 do
    Telemetry.with_span t (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  check Alcotest.int "capped" 3 (Telemetry.span_count t);
  check Alcotest.int "dropped counted" 2 (Telemetry.dropped_spans t)

(* --- Quantile accuracy property. ---

   The histograms are log₂-bucketed, so a reported quantile is the
   upper bound of the bucket holding the exact rank-th observation:
   never below the exact sorted-list quantile, never more than 2× above
   it (and exactly 0 when the exact quantile is 0). The reported min
   and max are exact. *)

let exact_quantile sorted q =
  let n = Array.length sorted in
  let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  sorted.(rank - 1)

let arbitrary_samples =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map Int64.to_string l))
    QCheck.Gen.(
      map
        (List.map Int64.of_int)
        (list_size (int_range 1 200)
           (oneof [ int_bound 10; int_bound 1000; int_bound 1_000_000 ])))

let prop_hist_quantile_bounds =
  QCheck.Test.make ~name:"hist quantile within log2 bound of exact"
    ~count:300 arbitrary_samples (fun vs ->
      let t = fresh () in
      List.iter (Telemetry.observe t "h") vs;
      let sorted = Array.of_list vs in
      Array.sort Int64.compare sorted;
      match Telemetry.histogram_stats t "h" with
      | None -> false
      | Some s ->
        let within q reported =
          let exact = exact_quantile sorted q in
          if Int64.equal exact 0L then Int64.equal reported 0L
          else
            Int64.compare exact reported <= 0
            && Int64.compare reported (Int64.mul 2L exact) <= 0
        in
        within 0.5 s.Telemetry.p50_us
        && within 0.95 s.Telemetry.p95_us
        && within 0.99 s.Telemetry.p99_us
        (* monotone in q *)
        && Int64.compare s.Telemetry.p50_us s.Telemetry.p95_us <= 0
        && Int64.compare s.Telemetry.p95_us s.Telemetry.p99_us <= 0
        (* min and max are exact, and bracket every quantile *)
        && Int64.equal s.Telemetry.min_us sorted.(0)
        && Int64.equal s.Telemetry.max_us sorted.(Array.length sorted - 1)
        && Int64.compare s.Telemetry.p99_us s.Telemetry.max_us <= 0)

(* --- Capture/replay. --- *)

let test_capture_replay () =
  let t = fresh () in
  Telemetry.set_sim_clock t (Some (fake_clock ~step:0L ()));
  let work () =
    Telemetry.incr t "work.count";
    Telemetry.with_span ~cat:"test" ~observe_hist:"work.us" t "work"
      (fun () ->
        Telemetry.add t "work.inner" 5L;
        Telemetry.observe t "work.len" 17L;
        Telemetry.set_gauge t "work.gauge" 3L;
        42)
  in
  let v, tape = Telemetry.capture t work in
  check Alcotest.int "captured result" 42 v;
  let tape = match tape with Some tp -> tp | None -> Alcotest.fail "no tape" in
  let spans_before = Telemetry.span_count t in
  Telemetry.replay t tape;
  Telemetry.replay t tape;
  (* three logical executions: counters, histograms and spans all agree *)
  check Alcotest.int64 "counter x3" 3L (Telemetry.counter_value t "work.count");
  check Alcotest.int64 "inner counter x3" 15L
    (Telemetry.counter_value t "work.inner");
  check Alcotest.int64 "gauge keeps value" 3L
    (Telemetry.gauge_value t "work.gauge");
  (match Telemetry.histogram_stats t "work.len" with
  | Some s ->
    check Alcotest.int "observations x3" 3 s.Telemetry.count;
    check Alcotest.int64 "sum x3" 51L s.Telemetry.sum_us
  | None -> Alcotest.fail "work.len histogram missing");
  (match Telemetry.histogram_stats t "work.us" with
  | Some s -> check Alcotest.int "span hist x3" 3 s.Telemetry.count
  | None -> Alcotest.fail "work.us histogram missing");
  check Alcotest.int "replay records spans" (spans_before + 2)
    (Telemetry.span_count t);
  (* replayed spans get fresh ids *)
  let ids =
    List.map (fun sp -> sp.Telemetry.sp_id) (Telemetry.spans t)
  in
  check Alcotest.int "ids distinct" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  (* a nested capture yields no tape (the outer capture owns the ops) *)
  let _, inner =
    fst (Telemetry.capture t (fun () -> Telemetry.capture t work))
  in
  check Alcotest.bool "nested capture refuses" true (inner = None);
  (* replay on a disabled registry is a no-op *)
  Telemetry.disable t;
  Telemetry.replay t tape;
  Telemetry.enable t;
  check Alcotest.int64 "disabled replay no-op" 4L
    (Telemetry.counter_value t "work.count")

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_counters;
          Alcotest.test_case "histogram stats" `Quick test_histogram;
          QCheck_alcotest.to_alcotest prop_hist_quantile_bounds;
        ] );
      ( "replay",
        [ Alcotest.test_case "capture/replay parity" `Quick test_capture_replay ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "recorded on exception" `Quick
            test_span_on_exception;
          Alcotest.test_case "observe_hist" `Quick test_span_observe_hist;
          Alcotest.test_case "observe_hist uses sim duration" `Quick
            test_span_observe_hist_sim;
          Alcotest.test_case "dual timeline" `Quick test_sim_clock;
          Alcotest.test_case "max_spans cap" `Quick test_span_cap;
        ] );
      ( "export",
        [
          Alcotest.test_case "json escaping" `Quick test_json_escape;
          Alcotest.test_case "chrome trace well-formed" `Quick
            test_chrome_trace_valid;
          Alcotest.test_case "metrics json well-formed" `Quick
            test_metrics_json_valid;
        ] );
      ( "disabled",
        [ Alcotest.test_case "everything is a no-op" `Quick test_disabled_noop ] );
    ]
