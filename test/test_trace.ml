(* Tests for the distributed-trace collector and its satellites: span
   trees and wire context propagation, export well-formedness, the
   flight-recorder ring, the SLO monitor's window arithmetic, and the
   completeness contract — in a seeded chaos run, every overload
   decision counted by telemetry appears exactly once as a trace
   reason event, and the acceptance traces (one shed, one brownout)
   span client, farm edge and shard with their explaining events. *)

let check = Alcotest.check

module Trace = Telemetry.Trace
module Flight = Telemetry.Flight
module Slo = Telemetry.Slo

let with_tracing f =
  Trace.reset ();
  Trace.enable ();
  let clock = ref 0L in
  Trace.set_clock (fun () -> !clock);
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
    (fun () -> f clock)

(* The structural-JSON tokenizer shared with the telemetry exporter
   tests: balanced brackets outside strings, every string closed. *)
let assert_balanced label s =
  let depth = ref 0 and in_str = ref false and esc = ref false in
  String.iter
    (fun c ->
      if !esc then esc := false
      else if !in_str then begin
        if c = '\\' then esc := true else if c = '"' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '[' | '{' -> incr depth
        | ']' | '}' -> decr depth
        | _ -> ())
    s;
  check Alcotest.int (label ^ " balanced") 0 !depth;
  check Alcotest.bool (label ^ " strings closed") false !in_str

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

(* --- Span trees and contexts. --- *)

let test_tree_basics () =
  with_tracing (fun clock ->
      let root = Trace.root ~node:"client" ~args:[ ("k", "v") ] "fetch" in
      let ctx = Trace.ctx_of root in
      check Alcotest.bool "root ctx live" true (Trace.live ctx);
      clock := 10L;
      let child = Trace.start ctx ~node:"edge" "route" in
      Trace.event (Trace.ctx_of child) ~node:"edge" ~kind:"farm.failover"
        "rerouted";
      clock := 25L;
      Trace.finish child;
      clock := 40L;
      Trace.finish root;
      (* finish is idempotent *)
      Trace.finish root;
      match Trace.trace_ids () with
      | [ tr ] ->
        (match Trace.spans_of tr with
        | [ r; c ] ->
          check Alcotest.string "root node" "client" r.Trace.s_node;
          check Alcotest.int "root has no parent" 0 r.Trace.s_parent;
          check Alcotest.int "child under root" r.Trace.s_id c.Trace.s_parent;
          check Alcotest.int64 "child start" 10L c.Trace.s_start;
          check Alcotest.int64 "child end" 25L c.Trace.s_end;
          check Alcotest.int64 "root end survives double finish" 40L
            r.Trace.s_end
        | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l));
        (match Trace.events_of tr with
        | [ e ] ->
          check Alcotest.string "event kind" "farm.failover" e.Trace.e_kind
        | l -> Alcotest.failf "expected 1 event, got %d" (List.length l));
        let txt = Trace.render tr in
        check Alcotest.bool "render shows spans" true
          (contains txt "fetch" && contains txt "route");
        check Alcotest.bool "render flags events" true (contains txt "!")
      | l -> Alcotest.failf "expected 1 trace, got %d" (List.length l))

let test_wire_roundtrip () =
  with_tracing (fun _ ->
      let root = Trace.root ~node:"client" "fetch" in
      let ctx = Trace.ctx_of root in
      (match Trace.wire ctx with
      | None -> Alcotest.fail "live ctx has no wire form"
      | Some (tr, sp) ->
        let ctx' = Trace.of_wire ~trace_id:(Some tr) ~parent_span:(Some sp) in
        check Alcotest.bool "rebuilt ctx live" true (Trace.live ctx');
        let child = Trace.start ctx' ~node:"edge" "route" in
        Trace.finish child;
        check Alcotest.int "child landed in the same trace" 2
          (List.length (Trace.spans_of tr)));
      check Alcotest.bool "absent headers give the null ctx" false
        (Trace.live (Trace.of_wire ~trace_id:None ~parent_span:None));
      check Alcotest.bool "null ctx has no wire form" true
        (Trace.wire Trace.none = None))

let test_disabled_noop () =
  Trace.reset ();
  Trace.disable ();
  let root = Trace.root ~node:"client" "fetch" in
  check Alcotest.bool "root ctx dead when disabled" false
    (Trace.live (Trace.ctx_of root));
  Trace.event (Trace.ctx_of root) ~node:"client" ~kind:"k" "d";
  Trace.finish root;
  check Alcotest.int "no spans" 0 (Trace.span_count ());
  check Alcotest.int "no events" 0 (Trace.event_count ());
  (* a null ctx is inert even when enabled *)
  Trace.enable ();
  Trace.event Trace.none ~node:"client" ~kind:"k" "d";
  Trace.finish (Trace.start Trace.none ~node:"edge" "route");
  check Alcotest.int "null ctx recorded nothing" 0 (Trace.span_count ());
  Trace.disable ();
  Trace.reset ()

let test_exports_wellformed () =
  with_tracing (fun clock ->
      let root = Trace.root ~node:"cli\"ent" "fe\ntch" in
      let ctx = Trace.ctx_of root in
      clock := 5L;
      let child = Trace.start ctx ~node:"edge" "route" in
      Trace.event (Trace.ctx_of child) ~node:"edge" ~kind:"admission.shed_queue"
        "queue full \"now\"";
      Trace.finish child;
      Trace.finish root;
      match Trace.trace_ids () with
      | [ tr ] ->
        let chrome = Trace.export_chrome tr in
        assert_balanced "chrome export" chrome;
        check Alcotest.bool "chrome has X span" true
          (contains chrome {|"ph":"X"|});
        check Alcotest.bool "chrome has instant event" true
          (contains chrome {|"ph":"i"|});
        let json = Trace.export_json tr in
        assert_balanced "json export" json;
        check Alcotest.bool "json has spans" true (contains json {|"spans"|});
        check Alcotest.bool "json has events" true (contains json {|"events"|})
      | l -> Alcotest.failf "expected 1 trace, got %d" (List.length l))

(* --- Flight recorder. --- *)

let test_flight_ring () =
  Flight.reset ();
  Flight.set_capacity 4;
  Fun.protect
    ~finally:(fun () -> Flight.set_capacity 256)
    (fun () ->
      for i = 1 to 6 do
        Flight.note ~at:(Int64.of_int i) ~node:"shard0"
          (Printf.sprintf "line %d" i)
      done;
      Flight.note ~at:3L ~node:"edge" "edge line";
      check
        (Alcotest.list Alcotest.string)
        "nodes sorted" [ "edge"; "shard0" ] (Flight.nodes ());
      let shard = Flight.entries ~node:"shard0" () in
      check Alcotest.int "ring keeps the last capacity lines" 4
        (List.length shard);
      (match shard with
      | first :: _ ->
        check Alcotest.string "oldest retained line" "line 3"
          first.Flight.fl_line
      | [] -> Alcotest.fail "empty ring");
      (match Flight.entries () with
      | merged ->
        let ats = List.map (fun e -> e.Flight.fl_at) merged in
        check Alcotest.bool "merged entries in timestamp order" true
          (List.sort Int64.compare ats = ats));
      let dump = Flight.dump_json () in
      assert_balanced "flight dump" dump;
      check Alcotest.bool "dump counts drops" true
        (contains dump {|"dropped":2|}))

(* --- SLO monitor. --- *)

let test_slo_window () =
  let s = Slo.create ~window_s:2 ~objective:0.5 () in
  Slo.record s ~now_us:500_000L (Slo.Fresh 1000);
  Slo.record s ~now_us:1_200_000L (Slo.Fresh 4000);
  Slo.record s ~now_us:1_300_000L Slo.Stale;
  Slo.note_shed s ~now_us:1_400_000L;
  Slo.record s ~now_us:2_500_000L Slo.Failed;
  let r = Slo.report s ~now_us:2_500_000L in
  (* window = seconds 1 and 2: the fresh serve at 0.5s aged out *)
  check Alcotest.int "window requests" 3 r.Slo.r_requests;
  check Alcotest.int "window fresh" 1 r.Slo.r_fresh;
  check Alcotest.int "window stale" 1 r.Slo.r_stale;
  check Alcotest.int "window failed" 1 r.Slo.r_failed;
  check Alcotest.int "window sheds" 1 r.Slo.r_sheds;
  check (Alcotest.float 0.001) "goodput = fresh bytes / window" 2000.0
    r.Slo.r_goodput_bps;
  check (Alcotest.float 0.001) "violation rate" (2.0 /. 3.0)
    r.Slo.r_violation_rate;
  check (Alcotest.float 0.001) "budget burn vs 50% objective"
    (2.0 /. 3.0 /. 0.5) r.Slo.r_budget_burn;
  (* totals never age out *)
  check Alcotest.int "total requests" 4 r.Slo.r_total_requests;
  check Alcotest.int "total fresh" 2 r.Slo.r_total_fresh;
  assert_balanced "slo json" (Slo.report_json r)

(* --- Completeness and acceptance over a seeded chaos run. --- *)

(* Short enough to keep the suite fast, long enough (at this seed) for
   sheds, hedges, failovers and serve-stale brownouts all to occur. *)
let chaos_cfg =
  { Dvm.Chaos.default_config with Dvm.Chaos.ch_duration_s = 16; ch_trace = true }

let run_traced_chaos () =
  Telemetry.reset Telemetry.default;
  Telemetry.enable Telemetry.default;
  Fun.protect
    ~finally:(fun () -> Telemetry.disable Telemetry.default)
    (fun () -> Dvm.Chaos.run chaos_cfg)

(* Reason-event kind <-> telemetry counter, 1:1. A decision that bumps
   the counter without leaving a trace event (or vice versa) breaks
   the books. *)
let decision_pairs =
  [
    ("admission.shed_deadline", "admission.shed_deadline");
    ("admission.shed_queue", "admission.shed_queue");
    ("breaker.trip", "breaker.trips");
    ("farm.failover", "farm.failovers");
    ("farm.breaker_skip", "farm.breaker_skips");
    ("farm.unavailable", "farm.unavailable");
    ("proxy.coalesce.join", "proxy.coalesced");
    ("proxy.l2_hit", "proxy.l2_hits");
    ("client.hedge", "client.hedges");
    ("client.hedge_win", "client.hedge_wins");
    ("client.serve_stale", "client.stale_served");
  ]

let test_completeness () =
  let o = run_traced_chaos () in
  (* the run must actually exercise the decisions under test *)
  check Alcotest.bool "sheds occurred" true (o.Dvm.Chaos.co_shed > 0);
  check Alcotest.bool "hedges occurred" true (o.Dvm.Chaos.co_hedges > 0);
  check Alcotest.bool "brownouts occurred" true
    (o.Dvm.Chaos.co_stale_served > 0);
  check Alcotest.int "no trace records dropped" 0 (Trace.dropped ());
  let kinds = Trace.event_kind_counts () in
  List.iter
    (fun (kind, counter) ->
      let ev = Option.value ~default:0 (List.assoc_opt kind kinds) in
      let c =
        Int64.to_int (Telemetry.counter_value Telemetry.default counter)
      in
      check Alcotest.int
        (Printf.sprintf "%s events = %s counter" kind counter)
        c ev)
    decision_pairs;
  (* no orphans: every event hangs off a span of its own trace *)
  let span_ids = Hashtbl.create 1024 in
  List.iter
    (fun s -> Hashtbl.replace span_ids (s.Trace.s_trace, s.Trace.s_id) ())
    (Trace.spans ());
  List.iter
    (fun e ->
      if not (Hashtbl.mem span_ids (e.Trace.e_trace, e.Trace.e_span)) then
        Alcotest.failf "orphan event %s (trace %Lx, span %d)" e.Trace.e_kind
          e.Trace.e_trace e.Trace.e_span)
    (Trace.events ())

let test_acceptance_traces () =
  ignore (run_traced_chaos ());
  let check_trace kind =
    match Trace.find_trace_with ~kind with
    | None -> Alcotest.failf "no trace contains a %s event" kind
    | Some tr ->
      let spans = Trace.spans_of tr in
      let has name node =
        List.exists
          (fun s ->
            String.equal s.Trace.s_name name && String.equal s.Trace.s_node node)
          spans
      in
      check Alcotest.bool (kind ^ ": client span present") true
        (has "client.fetch" "client");
      check Alcotest.bool (kind ^ ": edge routing span present") true
        (has "farm.route" "edge");
      check Alcotest.bool (kind ^ ": explaining event attached") true
        (List.exists
           (fun e -> String.equal e.Trace.e_kind kind)
           (Trace.events_of tr));
      assert_balanced (kind ^ " chrome export") (Trace.export_chrome tr);
      assert_balanced (kind ^ " json export") (Trace.export_json tr)
  in
  check_trace "admission.shed_deadline";
  check_trace "client.serve_stale"

(* Control-plane decisions mirror into reason events 1:1 under the
   same kind names — election, lease, re-drive and snapshot machinery
   included. The config matches the chaos suite's small control run,
   which provably exercises a leader crash, a stale-term wake-up and a
   snapshot catch-up. *)
let control_pairs =
  [
    "control.term_bump";
    "control.stepdown";
    "control.vote";
    "control.election_win";
    "control.redrive";
    "control.lease_grant";
    "control.lease_expire";
    "control.snapshot_compact";
    "control.snapshot_install";
    "control.resync";
    "control.fenced_rejects";
  ]

let test_control_completeness () =
  Telemetry.reset Telemetry.default;
  Telemetry.enable Telemetry.default;
  let o =
    Fun.protect
      ~finally:(fun () -> Telemetry.disable Telemetry.default)
      (fun () ->
        Dvm.Chaos.run_control
          {
            Dvm.Chaos.default_control_config with
            Dvm.Chaos.cc_clients = 12;
            cc_duration_s = 18;
            cc_applets = 6;
            cc_bump_at_s = 7;
            cc_partitions = 1;
            cc_partition_len_s = 2;
            cc_trace = true;
          })
  in
  (* the run exercised what the mirror claims to cover *)
  check Alcotest.bool "elections happened" true (o.Dvm.Chaos.cn_elections >= 2);
  check Alcotest.bool "suffix re-driven" true (o.Dvm.Chaos.cn_redrives >= 1);
  check Alcotest.bool "snapshot installed" true
    (o.Dvm.Chaos.cn_snapshot_installs >= 1);
  check Alcotest.int "no trace records dropped" 0 (Trace.dropped ());
  let kinds = Trace.event_kind_counts () in
  List.iter
    (fun kind ->
      let ev = Option.value ~default:0 (List.assoc_opt kind kinds) in
      let c =
        Int64.to_int (Telemetry.counter_value Telemetry.default kind)
      in
      check Alcotest.bool (kind ^ " occurred") true (c > 0);
      check Alcotest.int (kind ^ " events = counter") c ev)
    control_pairs;
  (* all of them hang off the control.plane root span *)
  match Trace.find_trace_with ~kind:"control.election_win" with
  | None -> Alcotest.fail "no trace contains the election"
  | Some tr ->
    check Alcotest.bool "control.plane span present" true
      (List.exists
         (fun s ->
           String.equal s.Trace.s_name "control.plane"
           && String.equal s.Trace.s_node "control")
         (Trace.spans_of tr))

let test_determinism () =
  let snapshot () =
    ignore (run_traced_chaos ());
    let shed =
      match Trace.find_trace_with ~kind:"admission.shed_deadline" with
      | Some tr -> tr
      | None -> Alcotest.fail "no shed trace"
    in
    ( Trace.span_count (),
      Trace.event_count (),
      shed,
      Trace.render shed,
      Trace.export_json shed )
  in
  let s1, e1, tr1, r1, j1 = snapshot () in
  let s2, e2, tr2, r2, j2 = snapshot () in
  check Alcotest.int "span count replays" s1 s2;
  check Alcotest.int "event count replays" e1 e2;
  check Alcotest.int64 "trace ids replay" tr1 tr2;
  check Alcotest.string "render replays byte-identically" r1 r2;
  check Alcotest.string "export replays byte-identically" j1 j2

let () =
  Alcotest.run "trace"
    [
      ( "collector",
        [
          Alcotest.test_case "span tree basics" `Quick test_tree_basics;
          Alcotest.test_case "wire context roundtrip" `Quick
            test_wire_roundtrip;
          Alcotest.test_case "disabled and null-ctx no-ops" `Quick
            test_disabled_noop;
          Alcotest.test_case "exports well-formed" `Quick
            test_exports_wellformed;
        ] );
      ( "flight",
        [ Alcotest.test_case "bounded ring" `Quick test_flight_ring ] );
      ("slo", [ Alcotest.test_case "window arithmetic" `Quick test_slo_window ]);
      ( "chaos",
        [
          Alcotest.test_case "decision completeness" `Quick test_completeness;
          Alcotest.test_case "control decision completeness" `Quick
            test_control_completeness;
          Alcotest.test_case "acceptance traces" `Quick test_acceptance_traces;
          Alcotest.test_case "seeded determinism" `Quick test_determinism;
        ] );
    ]
